//! Fault-tolerant multi-node campaign dispatch.
//!
//! The [`Coordinator`] partitions a list of self-contained [`CampaignSpec`]s
//! across a fleet of remote `experiments serve` workers and merges the
//! results into exactly what a local run would have produced. Determinism is
//! the contract: campaigns are seeded, so the same spec produces the same
//! event stream and the same report no matter where (or how many times) it
//! runs — which is what makes retry and reassignment safe.
//!
//! # Failure model
//!
//! Every remote interaction can fail: connects refused, sockets cut
//! mid-stream, peers stalling past a deadline, bytes corrupted in flight.
//! The coordinator's responses, in order of escalation:
//!
//! * **Retry with backoff** — each job gets up to
//!   [`RetryPolicy::max_attempts`] tries, spaced by capped exponential
//!   backoff with deterministic jitter (derived from the policy's seed, the
//!   job index and the attempt number — two coordinators with the same
//!   policy back off identically).
//! * **Reassignment** — a worker that fails *after* a campaign was
//!   submitted loses that campaign: the failure is logged (exactly once per
//!   lost in-flight campaign), the worker is quarantined in the
//!   [`FleetHealth`] state machine, and the next attempt goes to a
//!   different healthy worker.
//! * **Replay verification** — the coordinator keeps the longest validated
//!   NDJSON event prefix it has seen for each job. A replay (retry or
//!   reassignment) must reproduce that prefix byte-for-byte; any difference
//!   is a [`DispatchError::Divergence`] and fails the whole dispatch
//!   loudly, because divergent replays mean the determinism contract — and
//!   therefore every merged number — is suspect.
//! * **Quarantine → retire → readmit** — repeatedly failing workers stop
//!   receiving campaigns; an unauthenticated `GET /healthz` heartbeat probe
//!   readmits them when they come back (see [`FleetHealth`]).
//! * **Local fallback** — when every worker is unusable and retries are
//!   exhausted, the coordinator (unless told otherwise) degrades gracefully
//!   by running the remaining campaigns in-process, subject to the same
//!   replay verification against any partial remote prefix.
//!
//! What the coordinator *cannot* repair is a fault that forges valid JSON:
//! corruption is detected because garbage fails NDJSON line validation or
//! HTTP framing, but a byte flip that yields a *parseable* line differing
//! from the true stream is indistinguishable from nondeterminism and is
//! reported as divergence. That is deliberate — silently accepting either
//! would poison the merged report.
//!
//! Results are never folded twice: a job contributes exactly one report
//! (fetched once, after its campaign finishes), regardless of how many
//! attempts or which worker produced it.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use mabfuzz::report::campaign_json;
use mabfuzz::{
    derive_stream_seed, json_value, Campaign, CampaignSpec, CampaignSummary, CancelToken,
    EventLog, SharedBuffer,
};

use crate::client::Client;
use crate::health::{FleetHealth, DEFAULT_RETIRE_THRESHOLD};

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `a` (0-based) waits between `base * 2^a / 2` and `base * 2^a`,
/// capped at `max_delay`; the point in that window comes from the splitmix
/// stream seeded by `(jitter_seed, job, attempt)`, so backoff schedules are
/// reproducible run to run.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per job (clamped to ≥ 1); the first attempt counts.
    pub max_attempts: u32,
    /// Delay after the first failed attempt.
    pub base_delay: Duration,
    /// Ceiling the exponential curve saturates at.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            // "mabf-dispatch" squeezed into a seed; any fixed value works,
            // it only has to be stable.
            jitter_seed: 0x6d61_6266_d15b_a7c4,
        }
    }
}

impl RetryPolicy {
    /// The wait before retrying `job` after failed attempt `attempt`
    /// (0-based). Deterministic in `(jitter_seed, job, attempt)`.
    pub fn delay(&self, job: u64, attempt: u32) -> Duration {
        let exp = attempt.min(20);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay)
            .max(Duration::from_nanos(1));
        let half = raw / 2;
        let window = raw.saturating_sub(half).as_nanos() as u64;
        let jitter = if window == 0 {
            0
        } else {
            derive_stream_seed(self.jitter_seed, job, u64::from(attempt)) % (window + 1)
        };
        half + Duration::from_nanos(jitter)
    }
}

/// Why a dispatch failed as a whole.
#[derive(Debug)]
pub enum DispatchError {
    /// No workers were given and local fallback is disabled.
    NoWorkers,
    /// A spec cannot be dispatched (e.g. it has no embedded processor, so a
    /// remote worker could not reconstruct the campaign).
    InvalidSpec {
        /// The job index in the submitted list.
        job: usize,
        /// What is wrong with the spec.
        message: String,
    },
    /// A job exhausted its retry budget (and local fallback is disabled).
    JobFailed {
        /// The job index in the submitted list.
        job: usize,
        /// The campaign's report label.
        label: String,
        /// Remote attempts made before giving up.
        attempts: u32,
        /// The last attempt's failure.
        last_error: String,
    },
    /// A replay did not reproduce the event prefix an earlier attempt
    /// already produced — the determinism contract is broken and no merged
    /// number can be trusted, so the whole dispatch fails loudly.
    Divergence {
        /// The job index in the submitted list.
        job: usize,
        /// The campaign's report label.
        label: String,
        /// Where and how the replay diverged.
        detail: String,
    },
    /// A local-fallback execution could not start.
    LocalRun {
        /// The job index in the submitted list.
        job: usize,
        /// Why the local campaign could not be built.
        message: String,
    },
    /// The dispatch was cancelled via its [`CancelToken`].
    Cancelled,
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::NoWorkers => {
                write!(f, "no workers to dispatch to (and local fallback is disabled)")
            }
            DispatchError::InvalidSpec { job, message } => {
                write!(f, "job {job}: spec cannot be dispatched: {message}")
            }
            DispatchError::JobFailed { job, label, attempts, last_error } => write!(
                f,
                "job {job} ({label}): failed after {attempts} remote attempt(s): {last_error}"
            ),
            DispatchError::Divergence { job, label, detail } => write!(
                f,
                "job {job} ({label}): determinism divergence: {detail}"
            ),
            DispatchError::LocalRun { job, message } => {
                write!(f, "job {job}: local fallback failed: {message}")
            }
            DispatchError::Cancelled => write!(f, "dispatch cancelled"),
        }
    }
}

impl std::error::Error for DispatchError {}

/// One job's merged result.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's index in the submitted spec list (results come back in
    /// this order).
    pub job: usize,
    /// The campaign's report label.
    pub label: String,
    /// The full report document — byte-identical to what a local
    /// `experiments run --spec … --json` prints for the same spec.
    pub report: String,
    /// The summary the experiment reductions consume.
    pub summary: CampaignSummary,
    /// Remote attempts consumed (0 when the fleet was empty from the
    /// start and the job went straight to local fallback).
    pub attempts: u32,
    /// Whether the job ultimately ran in-process after the fleet was lost.
    pub ran_locally: bool,
}

/// The fault-tolerant dispatch coordinator. See the module docs for the
/// failure model.
pub struct Coordinator {
    workers: Vec<Client>,
    policy: RetryPolicy,
    retire_threshold: u32,
    local_fallback: bool,
    verbose: bool,
    cancel: CancelToken,
    reassignments: AtomicU64,
    local_runs: AtomicU64,
    log: Mutex<Vec<String>>,
}

impl Coordinator {
    /// A coordinator over `workers` (typically deadline-bearing clients,
    /// one per `--workers` entry) with default retry policy, local fallback
    /// enabled and no cancellation.
    pub fn new(workers: Vec<Client>) -> Coordinator {
        Coordinator {
            workers,
            policy: RetryPolicy::default(),
            retire_threshold: DEFAULT_RETIRE_THRESHOLD,
            local_fallback: true,
            verbose: false,
            cancel: CancelToken::new(),
            reassignments: AtomicU64::new(0),
            local_runs: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Replaces the retry/backoff policy.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Coordinator {
        self.policy = policy;
        self.policy.max_attempts = self.policy.max_attempts.max(1);
        self
    }

    /// Sets how many consecutive failures retire a worker (clamped ≥ 1).
    #[must_use]
    pub fn with_retire_threshold(mut self, threshold: u32) -> Coordinator {
        self.retire_threshold = threshold.max(1);
        self
    }

    /// Enables/disables graceful degradation to in-process execution when
    /// the whole fleet is lost (default: enabled). With fallback disabled a
    /// lost fleet fails the dispatch with [`DispatchError::JobFailed`].
    #[must_use]
    pub fn with_local_fallback(mut self, enabled: bool) -> Coordinator {
        self.local_fallback = enabled;
        self
    }

    /// Mirrors coordination log lines (reassignments, fallbacks) to stderr
    /// as they happen, in addition to collecting them in [`log`](Self::log).
    #[must_use]
    pub fn with_verbose(mut self, verbose: bool) -> Coordinator {
        self.verbose = verbose;
        self
    }

    /// Uses `cancel` to abort the dispatch cooperatively; cancellation
    /// surfaces as [`DispatchError::Cancelled`].
    #[must_use]
    pub fn with_cancellation(mut self, cancel: CancelToken) -> Coordinator {
        self.cancel = cancel;
        self
    }

    /// Total in-flight campaign losses that triggered reassignment so far.
    pub fn reassignments(&self) -> u64 {
        self.reassignments.load(Ordering::SeqCst)
    }

    /// Jobs that degraded to local in-process execution so far.
    pub fn local_runs(&self) -> u64 {
        self.local_runs.load(Ordering::SeqCst)
    }

    /// The coordination log: one line per reassignment / fallback event.
    pub fn log(&self) -> Vec<String> {
        self.log.lock().expect("dispatch log lock").clone()
    }

    /// Dispatches `specs` across the fleet and returns one [`JobOutcome`]
    /// per spec, in input order — the merge is a no-op because order is
    /// preserved end to end.
    ///
    /// # Errors
    ///
    /// The first (lowest-job-index) [`DispatchError`] encountered; on any
    /// error the remaining jobs are abandoned, because a partial grid is
    /// not a deliverable.
    pub fn run(&self, specs: &[CampaignSpec]) -> Result<Vec<JobOutcome>, DispatchError> {
        for (job, spec) in specs.iter().enumerate() {
            if spec.processor.is_none() {
                return Err(DispatchError::InvalidSpec {
                    job,
                    message: "spec has no `processor`; remote workers cannot rebuild it"
                        .to_owned(),
                });
            }
        }
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        if self.workers.is_empty() && !self.local_fallback {
            return Err(DispatchError::NoWorkers);
        }

        let spec_jsons: Vec<String> = specs.iter().map(CampaignSpec::to_json).collect();
        let fleet = FleetHealth::with_retire_threshold(self.workers.len(), self.retire_threshold);
        let pool = self.workers.len().max(1).min(specs.len());
        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<Result<JobOutcome, DispatchError>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for lane in 0..pool {
                let fleet = &fleet;
                let cursor = &cursor;
                let abort = &abort;
                let slots = &slots;
                let spec_jsons = &spec_jsons;
                scope.spawn(move || {
                    // Seed each lane's round-robin position differently so
                    // lanes start on distinct workers.
                    let mut last_pick = lane;
                    loop {
                        if abort.load(Ordering::SeqCst) {
                            break;
                        }
                        let job = cursor.fetch_add(1, Ordering::SeqCst);
                        if job >= specs.len() {
                            break;
                        }
                        let result = self.run_job(
                            fleet,
                            job,
                            &specs[job],
                            &spec_jsons[job],
                            &mut last_pick,
                        );
                        if result.is_err() {
                            abort.store(true, Ordering::SeqCst);
                        }
                        *slots[job].lock().expect("dispatch slot lock") = Some(result);
                    }
                });
            }
        });

        let mut outcomes = Vec::with_capacity(specs.len());
        for slot in slots {
            match slot.into_inner().expect("dispatch slot lock") {
                Some(Ok(outcome)) => outcomes.push(outcome),
                Some(Err(error)) => return Err(error),
                // An unfilled slot means a sibling job errored and aborted
                // the run before this job was claimed.
                None => return Err(DispatchError::Cancelled),
            }
        }
        Ok(outcomes)
    }

    /// Runs one job to completion: remote attempts with retry/backoff and
    /// reassignment, then local fallback.
    fn run_job(
        &self,
        fleet: &FleetHealth,
        job: usize,
        spec: &CampaignSpec,
        spec_json: &str,
        last_pick: &mut usize,
    ) -> Result<JobOutcome, DispatchError> {
        let label = spec.label();
        // The longest validated NDJSON event prefix any attempt produced;
        // every replay must reproduce it byte-for-byte.
        let mut prefix: Vec<u8> = Vec::new();
        let mut attempts = 0u32;
        let mut last_error = String::from("no healthy worker was available");

        while attempts < self.policy.max_attempts {
            if self.cancel.is_cancelled() {
                return Err(DispatchError::Cancelled);
            }
            let Some(worker) = self.pick_worker(fleet, *last_pick) else {
                break;
            };
            *last_pick = worker;
            attempts += 1;
            match self.attempt(&self.workers[worker], spec_json, &mut prefix) {
                Ok((report, summary)) => {
                    fleet.record_success(worker);
                    return Ok(JobOutcome {
                        job,
                        label,
                        report,
                        summary,
                        attempts,
                        ran_locally: false,
                    });
                }
                Err(AttemptError::Divergence(detail)) => {
                    return Err(DispatchError::Divergence { job, label, detail });
                }
                Err(AttemptError::Failed { submitted, message }) => {
                    fleet.record_failure(worker);
                    if submitted {
                        // Exactly one reassignment log line per lost
                        // in-flight campaign: refused connects never
                        // submitted anything, so they do not count.
                        self.reassignments.fetch_add(1, Ordering::SeqCst);
                        self.note(format!(
                            "reassigning job {job} ({label}): lost in flight on worker \
                             {worker} at attempt {attempts}: {message}"
                        ));
                    }
                    last_error = message;
                    if attempts < self.policy.max_attempts {
                        thread::sleep(self.policy.delay(job as u64, attempts - 1));
                    }
                }
            }
        }

        if self.local_fallback {
            self.run_locally(job, label, spec, &prefix, attempts, &last_error)
        } else {
            Err(DispatchError::JobFailed { job, label, attempts, last_error })
        }
    }

    /// The next worker to try: a healthy one in round-robin order, else the
    /// first quarantined/retired worker whose `GET /healthz` heartbeat
    /// succeeds (readmission).
    fn pick_worker(&self, fleet: &FleetHealth, after: usize) -> Option<usize> {
        if self.workers.is_empty() {
            return None;
        }
        if let Some(index) = fleet.pick_healthy(after) {
            return Some(index);
        }
        for index in fleet.probe_candidates() {
            if self.workers[index].healthz().is_ok() {
                fleet.record_success(index);
                return Some(index);
            }
            fleet.record_failure(index);
        }
        None
    }

    /// One remote attempt: submit → stream + validate events → status →
    /// report → summary → best-effort delete.
    fn attempt(
        &self,
        client: &Client,
        spec_json: &str,
        prefix: &mut Vec<u8>,
    ) -> Result<(String, CampaignSummary), AttemptError> {
        let id = match client.submit(spec_json) {
            Ok(id) => id,
            Err(error) => {
                return Err(AttemptError::Failed {
                    submitted: false,
                    message: format!("submit: {error}"),
                })
            }
        };
        // From here the campaign is in flight on the worker: any failure
        // below is a lost in-flight campaign and counts as a reassignment.
        let lost = |client: &Client, message: String| {
            // Best-effort: stop the orphaned campaign so a wounded-but-alive
            // worker does not burn cycles on a job we are reassigning.
            let _ = client.cancel(id);
            AttemptError::Failed { submitted: true, message }
        };

        let mut events: Vec<u8> = Vec::new();
        let stream_result = client.stream_events(id, &mut events);
        let (valid_len, corruption) = validated_prefix(&events);

        // Replay verification: whatever validated bytes this attempt
        // produced must agree with the prefix previous attempts folded.
        let common = valid_len.min(prefix.len());
        if events[..common] != prefix[..common] {
            let at = events[..common]
                .iter()
                .zip(prefix[..common].iter())
                .position(|(a, b)| a != b)
                .unwrap_or(common);
            return Err(AttemptError::Divergence(format!(
                "replay differs from previously folded events at byte {at}"
            )));
        }
        if valid_len > prefix.len() {
            prefix.clear();
            prefix.extend_from_slice(&events[..valid_len]);
        }

        if let Some(detail) = corruption {
            return Err(lost(client, format!("corrupt event stream: {detail}")));
        }
        if let Err(error) = stream_result {
            return Err(lost(client, format!("event stream: {error}")));
        }
        // The stream completed cleanly: it must cover (at least) everything
        // already folded, or the replay ended early — divergence.
        if valid_len < prefix.len() {
            return Err(AttemptError::Divergence(format!(
                "replay ended after {valid_len} validated bytes but {} were already folded",
                prefix.len()
            )));
        }

        let status = match client.status(id) {
            Ok(status) => status,
            Err(error) => return Err(lost(client, format!("status: {error}"))),
        };
        if status.status != "finished" {
            return Err(lost(
                client,
                format!("campaign ended `{}` instead of `finished`", status.status),
            ));
        }
        let report = match client.report(id) {
            Ok(report) => report,
            Err(error) => return Err(lost(client, format!("report: {error}"))),
        };
        let summary = match CampaignSummary::from_report_json(&report) {
            Ok(summary) => summary,
            Err(message) => return Err(lost(client, format!("report: {message}"))),
        };
        // Eviction is tidiness, not correctness: TTL or an operator DELETE
        // reclaims the entry if this fails.
        let _ = client.delete(id);
        Ok((report, summary))
    }

    /// Graceful degradation: run the campaign in-process, subject to the
    /// same replay verification as a remote retry.
    fn run_locally(
        &self,
        job: usize,
        label: String,
        spec: &CampaignSpec,
        prefix: &[u8],
        attempts: u32,
        last_error: &str,
    ) -> Result<JobOutcome, DispatchError> {
        self.local_runs.fetch_add(1, Ordering::SeqCst);
        self.note(format!(
            "job {job} ({label}): no usable worker after {attempts} remote attempt(s) \
             ({last_error}); running locally"
        ));
        let campaign = Campaign::from_spec(spec)
            .map_err(|error| DispatchError::LocalRun { job, message: error.to_string() })?;
        let buffer = SharedBuffer::new();
        let outcome = campaign
            .with_observer(Box::new(EventLog::new(buffer.clone())))
            .with_cancellation(self.cancel.clone())
            .execute();
        if self.cancel.is_cancelled() {
            return Err(DispatchError::Cancelled);
        }
        let events = buffer.contents();
        if !events.as_bytes().starts_with(prefix) {
            return Err(DispatchError::Divergence {
                job,
                label,
                detail: format!(
                    "local replay differs from the {} event bytes folded remotely",
                    prefix.len()
                ),
            });
        }
        let report = campaign_json(spec, &outcome);
        let summary = CampaignSummary::from_outcome(&outcome);
        Ok(JobOutcome { job, label, report, summary, attempts, ran_locally: true })
    }

    fn note(&self, line: String) {
        if self.verbose {
            eprintln!("dispatch: {line}");
        }
        self.log.lock().expect("dispatch log lock").push(line);
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("workers", &self.workers.len())
            .field("max_attempts", &self.policy.max_attempts)
            .field("local_fallback", &self.local_fallback)
            .finish()
    }
}

/// How one remote attempt failed.
enum AttemptError {
    /// Retryable: the worker (or the wire) failed. `submitted` says whether
    /// a campaign was in flight (and was therefore lost and reassigned).
    Failed { submitted: bool, message: String },
    /// Fatal: a replay contradicted previously folded events.
    Divergence(String),
}

/// The longest prefix of `bytes` consisting of complete, JSON-parseable
/// NDJSON lines, plus a description of the first corrupt complete line (if
/// any). Bytes after the last `\n` are an in-flight tail and count neither
/// way.
fn validated_prefix(bytes: &[u8]) -> (usize, Option<String>) {
    let mut valid = 0usize;
    let mut cursor = 0usize;
    while let Some(offset) = bytes[cursor..].iter().position(|&b| b == b'\n') {
        let end = cursor + offset + 1;
        let line = &bytes[cursor..end - 1];
        let parsed = std::str::from_utf8(line)
            .ok()
            .and_then(|text| json_value::parse(text).ok());
        if parsed.is_none() {
            return (
                valid,
                Some(format!("event line at byte {cursor} is not valid JSON")),
            );
        }
        valid = end;
        cursor = end;
    }
    (valid, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mabfuzz::BugSpec;
    use proc_sim::ProcessorKind;

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_seed: 7,
        };
        for attempt in 0..8 {
            let delay = policy.delay(3, attempt);
            assert_eq!(delay, policy.delay(3, attempt), "deterministic");
            assert!(delay <= policy.max_delay, "capped at max_delay");
            let raw = policy
                .base_delay
                .saturating_mul(1 << attempt.min(20))
                .min(policy.max_delay);
            assert!(delay >= raw / 2, "at least half the exponential step");
        }
        assert!(
            policy.delay(0, 0) != policy.delay(1, 0)
                || policy.delay(0, 1) != policy.delay(1, 1),
            "jitter separates jobs"
        );
        // Attempt numbers far past the cap must not overflow.
        assert!(policy.delay(0, u32::MAX) <= policy.max_delay);
    }

    #[test]
    fn validated_prefix_accepts_lines_rejects_garbage_and_ignores_tails() {
        let clean = b"{\"event\":\"a\"}\n{\"event\":\"b\"}\n";
        assert_eq!(validated_prefix(clean), (clean.len(), None));

        let with_tail = b"{\"event\":\"a\"}\n{\"event\":\"b\"";
        assert_eq!(validated_prefix(with_tail), (14, None), "unterminated tail ignored");

        let corrupt = b"{\"event\":\"a\"}\n\x01garbage\n{\"event\":\"b\"}\n";
        let (valid, detail) = validated_prefix(corrupt);
        assert_eq!(valid, 14, "valid prefix stops before the corrupt line");
        assert!(detail.expect("corruption reported").contains("byte 14"));

        assert_eq!(validated_prefix(b""), (0, None));
    }

    fn tiny_spec(seed: u64) -> CampaignSpec {
        CampaignSpec::builder()
            .max_tests(8)
            .rng_seed(seed)
            .processor(ProcessorKind::Rocket, BugSpec::None)
            .build()
            .expect("tiny spec")
    }

    #[test]
    fn empty_fleet_degrades_to_local_runs_matching_direct_execution() {
        let specs = vec![tiny_spec(11), tiny_spec(12)];
        let coordinator = Coordinator::new(Vec::new());
        let outcomes = coordinator.run(&specs).expect("local fallback dispatch");
        assert_eq!(outcomes.len(), 2);
        assert_eq!(coordinator.local_runs(), 2);
        assert_eq!(coordinator.reassignments(), 0, "nothing was ever in flight");
        for (outcome, spec) in outcomes.iter().zip(&specs) {
            assert!(outcome.ran_locally);
            assert_eq!(outcome.attempts, 0, "no worker to attempt on");
            let direct = Campaign::from_spec(spec).expect("build campaign").execute();
            assert_eq!(outcome.summary, CampaignSummary::from_outcome(&direct));
            assert_eq!(outcome.report, campaign_json(spec, &direct));
        }
    }

    #[test]
    fn empty_fleet_without_fallback_is_an_error() {
        let coordinator = Coordinator::new(Vec::new()).with_local_fallback(false);
        match coordinator.run(&[tiny_spec(1)]) {
            Err(DispatchError::NoWorkers) => {}
            other => panic!("expected NoWorkers, got {other:?}"),
        }
    }

    #[test]
    fn specs_without_processors_are_rejected_up_front() {
        let mut spec = tiny_spec(1);
        spec.processor = None;
        match Coordinator::new(Vec::new()).run(&[spec]) {
            Err(DispatchError::InvalidSpec { job: 0, .. }) => {}
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn empty_spec_list_is_a_noop() {
        let outcomes = Coordinator::new(Vec::new()).run(&[]).expect("empty dispatch");
        assert!(outcomes.is_empty());
    }
}
