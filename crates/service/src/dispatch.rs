//! Fault-tolerant multi-node campaign dispatch.
//!
//! The [`Coordinator`] partitions a list of self-contained [`CampaignSpec`]s
//! across a fleet of remote `experiments serve` workers and merges the
//! results into exactly what a local run would have produced. Determinism is
//! the contract: campaigns are seeded, so the same spec produces the same
//! event stream and the same report no matter where (or how many times) it
//! runs — which is what makes retry and reassignment safe.
//!
//! # Failure model
//!
//! Every remote interaction can fail: connects refused, sockets cut
//! mid-stream, peers stalling past a deadline, bytes corrupted in flight.
//! The coordinator's responses, in order of escalation:
//!
//! * **Retry with backoff** — each job gets up to
//!   [`RetryPolicy::max_attempts`] tries, spaced by capped exponential
//!   backoff with deterministic jitter (derived from the policy's seed, the
//!   job index and the attempt number — two coordinators with the same
//!   policy back off identically).
//! * **Backpressure backoff** — a worker answering `429 Too Many Requests`
//!   (its `--max-queue` bound is full) is healthy, just saturated: the
//!   refusal consumes no retry attempt, triggers no quarantine, and the
//!   coordinator simply backs off and resubmits (bounded, so a permanently
//!   full fleet still terminates into fallback/failure).
//! * **Reassignment** — a worker that fails *after* a campaign was
//!   submitted loses that campaign: the failure is logged (exactly once per
//!   lost in-flight campaign), the worker is quarantined in the
//!   [`FleetHealth`] state machine, and the next attempt goes to a
//!   different healthy worker.
//! * **Replay verification** — event streams are folded *incrementally*:
//!   each chunk is split into complete NDJSON lines and validated as it
//!   arrives, so a lane's memory is bounded by one event line, not by the
//!   campaign (the old coordinator buffered whole streams). What survives
//!   between attempts is only the bounded replay-prefix state — the length
//!   and running hash of the longest validated prefix any attempt produced.
//!   A replay (retry or reassignment) must reproduce that prefix
//!   byte-for-byte (checked by hash as the replay streams past it); any
//!   difference is a [`DispatchError::Divergence`] and fails the whole
//!   dispatch loudly, because divergent replays mean the determinism
//!   contract — and therefore every merged number — is suspect. Defense in
//!   depth bounds the fold itself: an event line past
//!   [`MAX_EVENT_LINE_BYTES`] or a stream past the coordinator's
//!   [`event stream cap`](Coordinator::with_event_stream_cap) is a loud
//!   [`DispatchError::EventOverflow`], so a hostile worker emitting endless
//!   valid JSON cannot OOM (or indefinitely busy) the coordinator.
//! * **Quarantine → retire → readmit** — repeatedly failing workers stop
//!   receiving campaigns; an unauthenticated `GET /healthz` heartbeat probe
//!   readmits them when they come back (see [`FleetHealth`]).
//! * **Local fallback** — when every worker is unusable and retries are
//!   exhausted, the coordinator (unless told otherwise) degrades gracefully
//!   by running the remaining campaigns in-process, subject to the same
//!   replay verification against any partial remote prefix.
//!
//! What the coordinator *cannot* repair is a fault that forges valid JSON:
//! corruption is detected because garbage fails NDJSON line validation or
//! HTTP framing, but a byte flip that yields a *parseable* line differing
//! from the true stream is indistinguishable from nondeterminism and is
//! reported as divergence. That is deliberate — silently accepting either
//! would poison the merged report.
//!
//! Results are never folded twice: a job contributes exactly one report
//! (fetched once, after its campaign finishes), regardless of how many
//! attempts or which worker produced it.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use mabfuzz::report::campaign_json;
use mabfuzz::{
    derive_stream_seed, json_value, Campaign, CampaignSpec, CampaignSummary, CancelToken,
    EventLog, SharedBuffer,
};

use crate::client::{Client, ClientError};
use crate::health::{FleetHealth, DEFAULT_RETIRE_THRESHOLD};

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `a` (0-based) waits between `base * 2^a / 2` and `base * 2^a`,
/// capped at `max_delay`; the point in that window comes from the splitmix
/// stream seeded by `(jitter_seed, job, attempt)`, so backoff schedules are
/// reproducible run to run.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per job (clamped to ≥ 1); the first attempt counts.
    pub max_attempts: u32,
    /// Delay after the first failed attempt.
    pub base_delay: Duration,
    /// Ceiling the exponential curve saturates at.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            // "mabf-dispatch" squeezed into a seed; any fixed value works,
            // it only has to be stable.
            jitter_seed: 0x6d61_6266_d15b_a7c4,
        }
    }
}

impl RetryPolicy {
    /// The wait before retrying `job` after failed attempt `attempt`
    /// (0-based). Deterministic in `(jitter_seed, job, attempt)`.
    pub fn delay(&self, job: u64, attempt: u32) -> Duration {
        let exp = attempt.min(20);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay)
            .max(Duration::from_nanos(1));
        let half = raw / 2;
        let window = raw.saturating_sub(half).as_nanos() as u64;
        let jitter = if window == 0 {
            0
        } else {
            derive_stream_seed(self.jitter_seed, job, u64::from(attempt)) % (window + 1)
        };
        half + Duration::from_nanos(jitter)
    }
}

/// Why a dispatch failed as a whole.
#[derive(Debug)]
pub enum DispatchError {
    /// No workers were given and local fallback is disabled.
    NoWorkers,
    /// A spec cannot be dispatched (e.g. it has no embedded processor, so a
    /// remote worker could not reconstruct the campaign).
    InvalidSpec {
        /// The job index in the submitted list.
        job: usize,
        /// What is wrong with the spec.
        message: String,
    },
    /// A job exhausted its retry budget (and local fallback is disabled).
    JobFailed {
        /// The job index in the submitted list.
        job: usize,
        /// The campaign's report label.
        label: String,
        /// Remote attempts made before giving up.
        attempts: u32,
        /// The last attempt's failure.
        last_error: String,
    },
    /// A replay did not reproduce the event prefix an earlier attempt
    /// already produced — the determinism contract is broken and no merged
    /// number can be trusted, so the whole dispatch fails loudly.
    Divergence {
        /// The job index in the submitted list.
        job: usize,
        /// The campaign's report label.
        label: String,
        /// Where and how the replay diverged.
        detail: String,
    },
    /// A worker's event stream blew through the coordinator's bounds (an
    /// event line past [`MAX_EVENT_LINE_BYTES`], or a stream past the
    /// [`event stream cap`](Coordinator::with_event_stream_cap)) — a
    /// hostile or broken worker, reported loudly instead of buffered.
    EventOverflow {
        /// The job index in the submitted list.
        job: usize,
        /// The campaign's report label.
        label: String,
        /// Which bound was exceeded.
        detail: String,
    },
    /// A local-fallback execution could not start.
    LocalRun {
        /// The job index in the submitted list.
        job: usize,
        /// Why the local campaign could not be built.
        message: String,
    },
    /// The dispatch was cancelled via its [`CancelToken`].
    Cancelled,
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::NoWorkers => {
                write!(f, "no workers to dispatch to (and local fallback is disabled)")
            }
            DispatchError::InvalidSpec { job, message } => {
                write!(f, "job {job}: spec cannot be dispatched: {message}")
            }
            DispatchError::JobFailed { job, label, attempts, last_error } => write!(
                f,
                "job {job} ({label}): failed after {attempts} remote attempt(s): {last_error}"
            ),
            DispatchError::Divergence { job, label, detail } => write!(
                f,
                "job {job} ({label}): determinism divergence: {detail}"
            ),
            DispatchError::EventOverflow { job, label, detail } => write!(
                f,
                "job {job} ({label}): event stream overflow: {detail}"
            ),
            DispatchError::LocalRun { job, message } => {
                write!(f, "job {job}: local fallback failed: {message}")
            }
            DispatchError::Cancelled => write!(f, "dispatch cancelled"),
        }
    }
}

impl std::error::Error for DispatchError {}

/// One job's merged result.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's index in the submitted spec list (results come back in
    /// this order).
    pub job: usize,
    /// The campaign's report label.
    pub label: String,
    /// The full report document — byte-identical to what a local
    /// `experiments run --spec … --json` prints for the same spec.
    pub report: String,
    /// The summary the experiment reductions consume.
    pub summary: CampaignSummary,
    /// Remote attempts consumed (0 when the fleet was empty from the
    /// start and the job went straight to local fallback).
    pub attempts: u32,
    /// Whether the job ultimately ran in-process after the fleet was lost.
    pub ran_locally: bool,
}

/// The fault-tolerant dispatch coordinator. See the module docs for the
/// failure model.
pub struct Coordinator {
    workers: Vec<Client>,
    policy: RetryPolicy,
    retire_threshold: u32,
    local_fallback: bool,
    verbose: bool,
    cancel: CancelToken,
    stream_cap: u64,
    reassignments: AtomicU64,
    local_runs: AtomicU64,
    busy_backoffs: AtomicU64,
    peak_line: AtomicUsize,
    log: Mutex<Vec<String>>,
}

/// Upper bound on a single NDJSON event line the streaming fold will
/// buffer. Real event lines are well under a kilobyte; a line this long is
/// a broken or hostile worker, reported as
/// [`DispatchError::EventOverflow`].
pub const MAX_EVENT_LINE_BYTES: usize = 1 << 20;

/// Default [`Coordinator::with_event_stream_cap`]: 1 GiB per campaign
/// attempt, far beyond any real grid cell.
pub const DEFAULT_EVENT_STREAM_CAP: u64 = 1 << 30;

/// Consecutive 429 backpressure refusals per job before the coordinator
/// stops waiting for the queue to drain and treats the fleet as unusable
/// for this job (falling back locally or failing loudly).
const MAX_BUSY_RETRIES: u32 = 32;

impl Coordinator {
    /// A coordinator over `workers` (typically deadline-bearing clients,
    /// one per `--workers` entry) with default retry policy, local fallback
    /// enabled and no cancellation.
    pub fn new(workers: Vec<Client>) -> Coordinator {
        Coordinator {
            workers,
            policy: RetryPolicy::default(),
            retire_threshold: DEFAULT_RETIRE_THRESHOLD,
            local_fallback: true,
            verbose: false,
            cancel: CancelToken::new(),
            stream_cap: DEFAULT_EVENT_STREAM_CAP,
            reassignments: AtomicU64::new(0),
            local_runs: AtomicU64::new(0),
            busy_backoffs: AtomicU64::new(0),
            peak_line: AtomicUsize::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Replaces the retry/backoff policy.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Coordinator {
        self.policy = policy;
        self.policy.max_attempts = self.policy.max_attempts.max(1);
        self
    }

    /// Sets how many consecutive failures retire a worker (clamped ≥ 1).
    #[must_use]
    pub fn with_retire_threshold(mut self, threshold: u32) -> Coordinator {
        self.retire_threshold = threshold.max(1);
        self
    }

    /// Enables/disables graceful degradation to in-process execution when
    /// the whole fleet is lost (default: enabled). With fallback disabled a
    /// lost fleet fails the dispatch with [`DispatchError::JobFailed`].
    #[must_use]
    pub fn with_local_fallback(mut self, enabled: bool) -> Coordinator {
        self.local_fallback = enabled;
        self
    }

    /// Mirrors coordination log lines (reassignments, fallbacks) to stderr
    /// as they happen, in addition to collecting them in [`log`](Self::log).
    #[must_use]
    pub fn with_verbose(mut self, verbose: bool) -> Coordinator {
        self.verbose = verbose;
        self
    }

    /// Uses `cancel` to abort the dispatch cooperatively; cancellation
    /// surfaces as [`DispatchError::Cancelled`].
    #[must_use]
    pub fn with_cancellation(mut self, cancel: CancelToken) -> Coordinator {
        self.cancel = cancel;
        self
    }

    /// Caps the total event bytes one campaign attempt may stream (default
    /// [`DEFAULT_EVENT_STREAM_CAP`]); past the cap the dispatch fails with
    /// a loud [`DispatchError::EventOverflow`]. The floor is one event
    /// line, so the cap cannot be configured below what a single valid
    /// event needs.
    #[must_use]
    pub fn with_event_stream_cap(mut self, bytes: u64) -> Coordinator {
        self.stream_cap = bytes.max(1);
        self
    }

    /// Total in-flight campaign losses that triggered reassignment so far.
    pub fn reassignments(&self) -> u64 {
        self.reassignments.load(Ordering::SeqCst)
    }

    /// Jobs that degraded to local in-process execution so far.
    pub fn local_runs(&self) -> u64 {
        self.local_runs.load(Ordering::SeqCst)
    }

    /// 429 backpressure refusals absorbed (backed off and resubmitted) so
    /// far.
    pub fn busy_backoffs(&self) -> u64 {
        self.busy_backoffs.load(Ordering::SeqCst)
    }

    /// The largest partial event line any streaming fold buffered — the
    /// actual per-lane memory high-water mark, which stays bounded by
    /// [`MAX_EVENT_LINE_BYTES`] no matter how long the event streams are.
    pub fn peak_event_line_bytes(&self) -> usize {
        self.peak_line.load(Ordering::SeqCst)
    }

    /// The coordination log: one line per reassignment / fallback event.
    pub fn log(&self) -> Vec<String> {
        self.log.lock().expect("dispatch log lock").clone()
    }

    /// Dispatches `specs` across the fleet and returns one [`JobOutcome`]
    /// per spec, in input order — the merge is a no-op because order is
    /// preserved end to end.
    ///
    /// # Errors
    ///
    /// The first (lowest-job-index) [`DispatchError`] encountered; on any
    /// error the remaining jobs are abandoned, because a partial grid is
    /// not a deliverable.
    pub fn run(&self, specs: &[CampaignSpec]) -> Result<Vec<JobOutcome>, DispatchError> {
        for (job, spec) in specs.iter().enumerate() {
            if spec.processor.is_none() {
                return Err(DispatchError::InvalidSpec {
                    job,
                    message: "spec has no `processor`; remote workers cannot rebuild it"
                        .to_owned(),
                });
            }
        }
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        if self.workers.is_empty() && !self.local_fallback {
            return Err(DispatchError::NoWorkers);
        }

        let spec_jsons: Vec<String> = specs.iter().map(CampaignSpec::to_json).collect();
        let fleet = FleetHealth::with_retire_threshold(self.workers.len(), self.retire_threshold);
        let pool = self.workers.len().max(1).min(specs.len());
        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<Result<JobOutcome, DispatchError>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for lane in 0..pool {
                let fleet = &fleet;
                let cursor = &cursor;
                let abort = &abort;
                let slots = &slots;
                let spec_jsons = &spec_jsons;
                scope.spawn(move || {
                    // Seed each lane's round-robin position differently so
                    // lanes start on distinct workers.
                    let mut last_pick = lane;
                    loop {
                        if abort.load(Ordering::SeqCst) {
                            break;
                        }
                        let job = cursor.fetch_add(1, Ordering::SeqCst);
                        if job >= specs.len() {
                            break;
                        }
                        let result = self.run_job(
                            fleet,
                            job,
                            &specs[job],
                            &spec_jsons[job],
                            &mut last_pick,
                        );
                        if result.is_err() {
                            abort.store(true, Ordering::SeqCst);
                        }
                        *slots[job].lock().expect("dispatch slot lock") = Some(result);
                    }
                });
            }
        });

        let mut outcomes = Vec::with_capacity(specs.len());
        for slot in slots {
            match slot.into_inner().expect("dispatch slot lock") {
                Some(Ok(outcome)) => outcomes.push(outcome),
                Some(Err(error)) => return Err(error),
                // An unfilled slot means a sibling job errored and aborted
                // the run before this job was claimed.
                None => return Err(DispatchError::Cancelled),
            }
        }
        Ok(outcomes)
    }

    /// Runs one job to completion: remote attempts with retry/backoff and
    /// reassignment, then local fallback.
    fn run_job(
        &self,
        fleet: &FleetHealth,
        job: usize,
        spec: &CampaignSpec,
        spec_json: &str,
        last_pick: &mut usize,
    ) -> Result<JobOutcome, DispatchError> {
        let label = spec.label();
        // The bounded replay-prefix state: length and running hash of the
        // longest validated NDJSON event prefix any attempt produced; every
        // replay must reproduce it byte-for-byte (checked by hash as the
        // replay streams past it).
        let mut prefix = PrefixState::default();
        let mut attempts = 0u32;
        let mut busy = 0u32;
        let mut last_error = String::from("no healthy worker was available");

        while attempts < self.policy.max_attempts {
            if self.cancel.is_cancelled() {
                return Err(DispatchError::Cancelled);
            }
            let Some(worker) = self.pick_worker(fleet, *last_pick) else {
                break;
            };
            *last_pick = worker;
            attempts += 1;
            match self.attempt(&self.workers[worker], spec_json, &mut prefix) {
                Ok((report, summary)) => {
                    fleet.record_success(worker);
                    return Ok(JobOutcome {
                        job,
                        label,
                        report,
                        summary,
                        attempts,
                        ran_locally: false,
                    });
                }
                Err(AttemptError::Divergence(detail)) => {
                    return Err(DispatchError::Divergence { job, label, detail });
                }
                Err(AttemptError::Overflow(detail)) => {
                    return Err(DispatchError::EventOverflow { job, label, detail });
                }
                Err(AttemptError::Busy { message }) => {
                    // 429: the worker is healthy, its queue is just full.
                    // No quarantine, no attempt consumed — back off and
                    // resubmit, bounded so a permanently saturated fleet
                    // still terminates.
                    attempts -= 1;
                    busy += 1;
                    self.busy_backoffs.fetch_add(1, Ordering::SeqCst);
                    if busy == 1 {
                        self.note(format!(
                            "job {job} ({label}): worker {worker} is at queue capacity \
                             (429); backing off"
                        ));
                    }
                    if busy > MAX_BUSY_RETRIES {
                        last_error =
                            format!("{message} (after {MAX_BUSY_RETRIES} backpressure backoffs)");
                        break;
                    }
                    thread::sleep(self.policy.delay(job as u64, (busy - 1).min(8)));
                }
                Err(AttemptError::Failed { submitted, message }) => {
                    fleet.record_failure(worker);
                    if submitted {
                        // Exactly one reassignment log line per lost
                        // in-flight campaign: refused connects never
                        // submitted anything, so they do not count.
                        self.reassignments.fetch_add(1, Ordering::SeqCst);
                        self.note(format!(
                            "reassigning job {job} ({label}): lost in flight on worker \
                             {worker} at attempt {attempts}: {message}"
                        ));
                    }
                    last_error = message;
                    if attempts < self.policy.max_attempts {
                        thread::sleep(self.policy.delay(job as u64, attempts - 1));
                    }
                }
            }
        }

        if self.local_fallback {
            self.run_locally(job, label, spec, &prefix, attempts, &last_error)
        } else {
            Err(DispatchError::JobFailed { job, label, attempts, last_error })
        }
    }

    /// The next worker to try: a healthy one in round-robin order, else the
    /// first quarantined/retired worker whose `GET /healthz` heartbeat
    /// succeeds (readmission).
    fn pick_worker(&self, fleet: &FleetHealth, after: usize) -> Option<usize> {
        if self.workers.is_empty() {
            return None;
        }
        if let Some(index) = fleet.pick_healthy(after) {
            return Some(index);
        }
        for index in fleet.probe_candidates() {
            if self.workers[index].healthz().is_ok() {
                fleet.record_success(index);
                return Some(index);
            }
            fleet.record_failure(index);
        }
        None
    }

    /// One remote attempt: submit → stream + fold events incrementally →
    /// status → report → summary → best-effort delete.
    fn attempt(
        &self,
        client: &Client,
        spec_json: &str,
        prefix: &mut PrefixState,
    ) -> Result<(String, CampaignSummary), AttemptError> {
        let id = match client.submit(spec_json) {
            Ok(id) => id,
            Err(ClientError::Http { status: 429, message }) => {
                return Err(AttemptError::Busy { message })
            }
            Err(error) => {
                return Err(AttemptError::Failed {
                    submitted: false,
                    message: format!("submit: {error}"),
                })
            }
        };
        // From here the campaign is in flight on the worker: any failure
        // below is a lost in-flight campaign and counts as a reassignment.
        let lost = |client: &Client, message: String| {
            // Best-effort: stop the orphaned campaign so a wounded-but-alive
            // worker does not burn cycles on a job we are reassigning.
            let _ = client.cancel(id);
            AttemptError::Failed { submitted: true, message }
        };

        // Fold the event stream as it arrives: complete NDJSON lines are
        // validated and hashed chunk by chunk, so this attempt's memory is
        // one partial line, never the whole stream. Fatal conditions
        // (divergence, overflow, corruption) abort the stream early.
        let mut fold = StreamFold::new(*prefix, self.stream_cap);
        let stream_result = client.stream_events(id, &mut fold);
        self.peak_line.fetch_max(fold.peak_line, Ordering::SeqCst);

        // Replay verification: the fold compared the running hash against
        // the stored prefix state the moment the replay streamed past it.
        if fold.diverged {
            return Err(AttemptError::Divergence(format!(
                "replay differs from the {} previously folded event bytes",
                prefix.len
            )));
        }
        if let Some(detail) = fold.overflow {
            // Overflow is the coordinator refusing to keep reading, not the
            // worker dying: stop the (possibly endless) campaign.
            let _ = client.cancel(id);
            return Err(AttemptError::Overflow(detail));
        }
        if fold.validated_len > prefix.len {
            *prefix = PrefixState { len: fold.validated_len, hash: fold.validated_hash };
        }

        if let Some(detail) = fold.corruption {
            return Err(lost(client, format!("corrupt event stream: {detail}")));
        }
        if let Err(error) = stream_result {
            return Err(lost(client, format!("event stream: {error}")));
        }
        // The stream completed cleanly: it must cover (at least) everything
        // already folded, or the replay ended early — divergence.
        if fold.validated_len < prefix.len {
            return Err(AttemptError::Divergence(format!(
                "replay ended after {} validated bytes but {} were already folded",
                fold.validated_len,
                prefix.len
            )));
        }

        let status = match client.status(id) {
            Ok(status) => status,
            Err(error) => return Err(lost(client, format!("status: {error}"))),
        };
        if status.status != "finished" {
            return Err(lost(
                client,
                format!("campaign ended `{}` instead of `finished`", status.status),
            ));
        }
        let report = match client.report(id) {
            Ok(report) => report,
            Err(error) => return Err(lost(client, format!("report: {error}"))),
        };
        let summary = match CampaignSummary::from_report_json(&report) {
            Ok(summary) => summary,
            Err(message) => return Err(lost(client, format!("report: {message}"))),
        };
        // Eviction is tidiness, not correctness: TTL or an operator DELETE
        // reclaims the entry if this fails.
        let _ = client.delete(id);
        Ok((report, summary))
    }

    /// Graceful degradation: run the campaign in-process, subject to the
    /// same replay verification as a remote retry.
    fn run_locally(
        &self,
        job: usize,
        label: String,
        spec: &CampaignSpec,
        prefix: &PrefixState,
        attempts: u32,
        last_error: &str,
    ) -> Result<JobOutcome, DispatchError> {
        self.local_runs.fetch_add(1, Ordering::SeqCst);
        self.note(format!(
            "job {job} ({label}): no usable worker after {attempts} remote attempt(s) \
             ({last_error}); running locally"
        ));
        let campaign = Campaign::from_spec(spec)
            .map_err(|error| DispatchError::LocalRun { job, message: error.to_string() })?;
        let buffer = SharedBuffer::new();
        let outcome = campaign
            .with_observer(Box::new(EventLog::new(buffer.clone())))
            .with_cancellation(self.cancel.clone())
            .execute();
        if self.cancel.is_cancelled() {
            return Err(DispatchError::Cancelled);
        }
        let events = buffer.contents();
        let bytes = events.as_bytes();
        let replayed = bytes.len() >= prefix.len
            && bytes[..prefix.len].iter().fold(FNV_OFFSET, |hash, &b| fnv1a(hash, b))
                == prefix.hash;
        if !replayed {
            return Err(DispatchError::Divergence {
                job,
                label,
                detail: format!(
                    "local replay differs from the {} event bytes folded remotely",
                    prefix.len
                ),
            });
        }
        let report = campaign_json(spec, &outcome);
        let summary = CampaignSummary::from_outcome(&outcome);
        Ok(JobOutcome { job, label, report, summary, attempts, ran_locally: true })
    }

    fn note(&self, line: String) {
        if self.verbose {
            eprintln!("dispatch: {line}");
        }
        self.log.lock().expect("dispatch log lock").push(line);
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("workers", &self.workers.len())
            .field("max_attempts", &self.policy.max_attempts)
            .field("local_fallback", &self.local_fallback)
            .finish()
    }
}

/// How one remote attempt failed.
enum AttemptError {
    /// Retryable: the worker (or the wire) failed. `submitted` says whether
    /// a campaign was in flight (and was therefore lost and reassigned).
    Failed { submitted: bool, message: String },
    /// Retryable without consuming an attempt: the worker answered 429, its
    /// job queue is at capacity.
    Busy { message: String },
    /// Fatal: a replay contradicted previously folded events.
    Divergence(String),
    /// Fatal: the event stream blew through a coordinator bound.
    Overflow(String),
}

/// FNV-1a 64-bit offset basis — the hash of the empty prefix.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one byte into an FNV-1a 64-bit running hash.
fn fnv1a(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3)
}

/// The bounded replay-prefix state that survives between attempts: the
/// length of the longest validated NDJSON event prefix any attempt
/// produced, and the FNV-1a hash of those bytes. O(1) regardless of how
/// much a campaign streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrefixState {
    len: usize,
    hash: u64,
}

impl Default for PrefixState {
    fn default() -> PrefixState {
        PrefixState { len: 0, hash: FNV_OFFSET }
    }
}

/// The incremental NDJSON fold one attempt streams its events through.
///
/// As chunks arrive, complete lines are validated (UTF-8 + JSON) and their
/// bytes folded into a running FNV-1a hash; only the current partial line
/// is buffered, capped at [`MAX_EVENT_LINE_BYTES`]. The moment the
/// validated length crosses the stored prefix length, the running hash is
/// compared against the stored prefix hash — replay verification without
/// keeping the prefix bytes. Fatal conditions (divergence, corruption,
/// overflow) mark themselves and abort the stream early by failing the
/// `write`.
struct StreamFold {
    /// The prefix state previous attempts folded (what the replay must
    /// reproduce).
    expect: PrefixState,
    /// Whether the running hash was already checked at the crossing point.
    checked: bool,
    /// Validated bytes so far (complete, parseable lines only).
    validated_len: usize,
    /// FNV-1a hash of the validated bytes.
    validated_hash: u64,
    /// The in-flight partial line.
    line: Vec<u8>,
    /// Total bytes streamed (validated or not), checked against the cap.
    total_streamed: u64,
    stream_cap: u64,
    /// High-water mark of the partial-line buffer.
    peak_line: usize,
    diverged: bool,
    corruption: Option<String>,
    overflow: Option<String>,
}

/// The error a [`StreamFold`] fails its `write` with to abort the stream;
/// the fold's own flags carry the real diagnosis.
fn fold_abort() -> io::Error {
    io::Error::other("event fold aborted the stream")
}

impl StreamFold {
    fn new(expect: PrefixState, stream_cap: u64) -> StreamFold {
        StreamFold {
            expect,
            checked: false,
            validated_len: 0,
            validated_hash: FNV_OFFSET,
            line: Vec::new(),
            total_streamed: 0,
            stream_cap,
            peak_line: 0,
            diverged: false,
            corruption: None,
            overflow: None,
        }
    }

    /// Folds one validated line (newline included) into the running hash,
    /// comparing against the stored prefix exactly when the validated
    /// length crosses it.
    fn absorb_validated(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.check_crossing();
            self.validated_hash = fnv1a(self.validated_hash, byte);
            self.validated_len += 1;
        }
        self.check_crossing();
    }

    fn check_crossing(&mut self) {
        if !self.checked && self.validated_len == self.expect.len {
            self.checked = true;
            if self.validated_hash != self.expect.hash {
                self.diverged = true;
            }
        }
    }
}

impl Write for StreamFold {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.total_streamed += buf.len() as u64;
        if self.total_streamed > self.stream_cap {
            self.overflow = Some(format!(
                "event stream exceeded the {} byte cap",
                self.stream_cap
            ));
            return Err(fold_abort());
        }
        let mut rest = buf;
        while let Some(offset) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(offset + 1);
            rest = tail;
            if self.line.len() + head.len() > MAX_EVENT_LINE_BYTES {
                self.overflow = Some(format!(
                    "an event line exceeded {MAX_EVENT_LINE_BYTES} bytes"
                ));
                return Err(fold_abort());
            }
            self.line.extend_from_slice(head);
            self.peak_line = self.peak_line.max(self.line.len());
            let body = &self.line[..self.line.len() - 1];
            let parsed = std::str::from_utf8(body)
                .ok()
                .and_then(|text| json_value::parse(text).ok());
            if parsed.is_none() {
                self.corruption = Some(format!(
                    "event line at byte {} is not valid JSON",
                    self.validated_len
                ));
                return Err(fold_abort());
            }
            let line = std::mem::take(&mut self.line);
            self.absorb_validated(&line);
            if self.diverged {
                return Err(fold_abort());
            }
        }
        if self.line.len() + rest.len() > MAX_EVENT_LINE_BYTES {
            self.overflow = Some(format!(
                "an event line exceeded {MAX_EVENT_LINE_BYTES} bytes"
            ));
            return Err(fold_abort());
        }
        self.line.extend_from_slice(rest);
        self.peak_line = self.peak_line.max(self.line.len());
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mabfuzz::BugSpec;
    use proc_sim::ProcessorKind;

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_seed: 7,
        };
        for attempt in 0..8 {
            let delay = policy.delay(3, attempt);
            assert_eq!(delay, policy.delay(3, attempt), "deterministic");
            assert!(delay <= policy.max_delay, "capped at max_delay");
            let raw = policy
                .base_delay
                .saturating_mul(1 << attempt.min(20))
                .min(policy.max_delay);
            assert!(delay >= raw / 2, "at least half the exponential step");
        }
        assert!(
            policy.delay(0, 0) != policy.delay(1, 0)
                || policy.delay(0, 1) != policy.delay(1, 1),
            "jitter separates jobs"
        );
        // Attempt numbers far past the cap must not overflow.
        assert!(policy.delay(0, u32::MAX) <= policy.max_delay);
    }

    /// Feeds `bytes` to a fresh fold in `chunk`-sized writes, ignoring the
    /// abort error (the fold's flags carry the diagnosis).
    fn fold_bytes(expect: PrefixState, cap: u64, bytes: &[u8], chunk: usize) -> StreamFold {
        let mut fold = StreamFold::new(expect, cap);
        for piece in bytes.chunks(chunk.max(1)) {
            if fold.write(piece).is_err() {
                break;
            }
        }
        fold
    }

    #[test]
    fn stream_fold_accepts_lines_rejects_garbage_and_ignores_tails() {
        for chunk in [1, 3, 7, 1024] {
            let clean = b"{\"event\":\"a\"}\n{\"event\":\"b\"}\n";
            let fold = fold_bytes(PrefixState::default(), u64::MAX, clean, chunk);
            assert_eq!(fold.validated_len, clean.len());
            assert!(fold.corruption.is_none() && !fold.diverged && fold.overflow.is_none());

            let with_tail = b"{\"event\":\"a\"}\n{\"event\":\"b\"";
            let fold = fold_bytes(PrefixState::default(), u64::MAX, with_tail, chunk);
            assert_eq!(fold.validated_len, 14, "unterminated tail ignored");
            assert!(fold.corruption.is_none());

            let corrupt = b"{\"event\":\"a\"}\n\x01garbage\n{\"event\":\"b\"}\n";
            let fold = fold_bytes(PrefixState::default(), u64::MAX, corrupt, chunk);
            assert_eq!(fold.validated_len, 14, "valid prefix stops before the corrupt line");
            assert!(fold.corruption.expect("corruption reported").contains("byte 14"));

            let fold = fold_bytes(PrefixState::default(), u64::MAX, b"", chunk);
            assert_eq!(fold.validated_len, 0);
            assert!(fold.corruption.is_none());
        }
    }

    #[test]
    fn stream_fold_hash_matches_a_bytewise_fnv_over_the_validated_prefix() {
        let clean = b"{\"event\":\"a\"}\n{\"event\":\"b\"}\n{\"tail\"";
        let fold = fold_bytes(PrefixState::default(), u64::MAX, clean, 5);
        let expected = clean[..fold.validated_len]
            .iter()
            .fold(FNV_OFFSET, |hash, &b| fnv1a(hash, b));
        assert_eq!(fold.validated_hash, expected);
    }

    #[test]
    fn stream_fold_detects_divergence_when_the_replay_crosses_the_prefix() {
        let first = b"{\"event\":\"a\"}\n{\"event\":\"b\"}\n";
        let folded = fold_bytes(PrefixState::default(), u64::MAX, first, 8);
        let prefix = PrefixState { len: folded.validated_len, hash: folded.validated_hash };

        // A faithful replay (with extra events after) passes the crossing.
        let replay = b"{\"event\":\"a\"}\n{\"event\":\"b\"}\n{\"event\":\"c\"}\n";
        let fold = fold_bytes(prefix, u64::MAX, replay, 8);
        assert!(!fold.diverged);
        assert_eq!(fold.validated_len, replay.len());

        // One byte different inside the folded prefix: caught at the
        // crossing, and the fold refuses to keep streaming.
        let tampered = b"{\"event\":\"a\"}\n{\"event\":\"X\"}\n{\"event\":\"c\"}\n";
        let mut fold = StreamFold::new(prefix, u64::MAX);
        let result = fold.write(tampered);
        assert!(fold.diverged, "tampered replay must diverge");
        assert!(result.is_err(), "divergence aborts the stream");
    }

    #[test]
    fn stream_fold_bounds_lines_and_total_stream() {
        // A partial line growing past the line cap overflows without the
        // fold ever buffering more than the cap.
        let mut fold = StreamFold::new(PrefixState::default(), u64::MAX);
        let chunk = vec![b'a'; 4096];
        let mut wrote = 0usize;
        while let Ok(n) = fold.write(&chunk) {
            wrote += n;
            assert!(wrote <= MAX_EVENT_LINE_BYTES + chunk.len(), "overflow fired late");
        }
        assert!(fold.overflow.expect("line overflow").contains("event line"));
        assert!(fold.peak_line <= MAX_EVENT_LINE_BYTES);

        // A stream of perfectly valid lines past the stream cap overflows:
        // endless valid JSON cannot pin the coordinator.
        let mut fold = StreamFold::new(PrefixState::default(), 64);
        let line = b"{\"event\":\"a\"}\n";
        let mut aborted = false;
        for _ in 0..16 {
            if fold.write(line).is_err() {
                aborted = true;
                break;
            }
        }
        assert!(aborted, "the stream cap must abort the fold");
        assert!(fold.overflow.expect("stream overflow").contains("cap"));
    }

    fn tiny_spec(seed: u64) -> CampaignSpec {
        CampaignSpec::builder()
            .max_tests(8)
            .rng_seed(seed)
            .processor(ProcessorKind::Rocket, BugSpec::None)
            .build()
            .expect("tiny spec")
    }

    #[test]
    fn empty_fleet_degrades_to_local_runs_matching_direct_execution() {
        let specs = vec![tiny_spec(11), tiny_spec(12)];
        let coordinator = Coordinator::new(Vec::new());
        let outcomes = coordinator.run(&specs).expect("local fallback dispatch");
        assert_eq!(outcomes.len(), 2);
        assert_eq!(coordinator.local_runs(), 2);
        assert_eq!(coordinator.reassignments(), 0, "nothing was ever in flight");
        for (outcome, spec) in outcomes.iter().zip(&specs) {
            assert!(outcome.ran_locally);
            assert_eq!(outcome.attempts, 0, "no worker to attempt on");
            let direct = Campaign::from_spec(spec).expect("build campaign").execute();
            assert_eq!(outcome.summary, CampaignSummary::from_outcome(&direct));
            assert_eq!(outcome.report, campaign_json(spec, &direct));
        }
    }

    #[test]
    fn empty_fleet_without_fallback_is_an_error() {
        let coordinator = Coordinator::new(Vec::new()).with_local_fallback(false);
        match coordinator.run(&[tiny_spec(1)]) {
            Err(DispatchError::NoWorkers) => {}
            other => panic!("expected NoWorkers, got {other:?}"),
        }
    }

    #[test]
    fn specs_without_processors_are_rejected_up_front() {
        let mut spec = tiny_spec(1);
        spec.processor = None;
        match Coordinator::new(Vec::new()).run(&[spec]) {
            Err(DispatchError::InvalidSpec { job: 0, .. }) => {}
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn empty_spec_list_is_a_noop() {
        let outcomes = Coordinator::new(Vec::new()).run(&[]).expect("empty dispatch");
        assert!(outcomes.is_empty());
    }
}
