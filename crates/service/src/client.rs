//! A small blocking client for the campaign service.
//!
//! One connection per request (the server replies `Connection: close`), so
//! the client is `Clone`-free state: just the server address. It is what the
//! in-tree round-trip tests and `examples/remote_campaign.rs` drive — the
//! whole loop of submit spec → tail events → fetch final report.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use mabfuzz::json_value;

use crate::http::{
    read_response_head, read_sized_body, stream_chunked_body, ResponseHead,
};
use crate::transport::{Connection, TcpTransport, Transport};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A socket or framing error.
    Io(io::Error),
    /// The server answered with a non-success status; `message` carries the
    /// body's `error` text (the `SpecError` text for rejected specs).
    Http {
        /// The HTTP status code.
        status: u16,
        /// The server's error message.
        message: String,
    },
    /// The response body did not match the protocol schema.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(error) => write!(f, "I/O error: {error}"),
            ClientError::Http { status, message } => write!(f, "HTTP {status}: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> ClientError {
        ClientError::Io(error)
    }
}

/// The status snapshot of one remote campaign.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// The campaign id.
    pub id: u64,
    /// The lifecycle status: `queued`, `running`, `finished`, `cancelled`
    /// or `failed`.
    pub status: String,
    /// The campaign's report label (`"MABFuzz: UCB"`, `"TheHuzz"`, …).
    pub label: String,
}

impl CampaignStatus {
    /// Whether the campaign will make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(self.status.as_str(), "finished" | "cancelled" | "failed")
    }
}

/// A blocking campaign-service client.
#[derive(Clone)]
pub struct Client {
    addr: SocketAddr,
    transport: Arc<dyn Transport>,
    auth_token: Option<String>,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("auth", &self.auth_token.is_some())
            .finish()
    }
}

impl Client {
    /// A client for the daemon at `addr` (plain TCP, no deadlines, no auth).
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, transport: Arc::new(TcpTransport::default()), auth_token: None }
    }

    /// Resolves `addr` (e.g. `"127.0.0.1:8080"`) and builds a client for it.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the address does not resolve.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("`{addr}` resolves to nothing")))?;
        Ok(Client::new(addr))
    }

    /// Routes every connection through `transport` — the dispatch
    /// coordinator's deadline-bearing [`TcpTransport`] or a chaos suite's
    /// [`FaultyTransport`](crate::FaultyTransport).
    pub fn with_transport(mut self, transport: Arc<dyn Transport>) -> Client {
        self.transport = transport;
        self
    }

    /// Applies connect/read/write deadlines to every request (`None`
    /// restores unbounded I/O). A convenience for
    /// [`with_transport`](Client::with_transport) over a deadline-bearing
    /// [`TcpTransport`].
    pub fn with_deadline(self, timeout: Option<Duration>) -> Client {
        self.with_transport(Arc::new(TcpTransport::with_deadlines(timeout)))
    }

    /// Sends `Authorization: Bearer <token>` on every request — required
    /// when the daemon runs with `--auth-token`.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> Client {
        self.auth_token = Some(token.into());
        self
    }

    /// The server address this client targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Opens a connection and writes the request head (plus any auth
    /// header).
    fn open(
        &self,
        method: &str,
        path: &str,
        body_len: Option<usize>,
    ) -> Result<Box<dyn Connection>, ClientError> {
        let mut conn = self.transport.connect(self.addr)?;
        let auth = match &self.auth_token {
            Some(token) => format!("Authorization: Bearer {token}\r\n"),
            None => String::new(),
        };
        let length = match body_len {
            Some(length) => format!("Content-Length: {length}\r\n"),
            None => String::new(),
        };
        write!(
            conn,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\n{auth}{length}Connection: close\r\n\r\n",
            self.addr
        )?;
        Ok(conn)
    }

    /// Probes `GET /healthz` and returns the server's campaign count — the
    /// heartbeat the dispatch coordinator uses to readmit quarantined
    /// workers. The probe is deliberately exempt from auth (see the crate
    /// docs), so it works regardless of token configuration.
    pub fn healthz(&self) -> Result<u64, ClientError> {
        let body = self.request_sized("GET", "/healthz", None)?;
        let value = parse_body(&body)?;
        let status = field(&value, "status")?
            .as_str("status")
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        if status != "ok" {
            return Err(ClientError::Protocol(format!("healthz status `{status}`")));
        }
        field(&value, "campaigns")?
            .as_u64("campaigns")
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Submits a campaign-spec JSON document (`POST /campaigns`) and returns
    /// the assigned campaign id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Http`] with status 400 and the strict codec's
    /// `SpecError` text when the spec is rejected.
    pub fn submit(&self, spec_json: &str) -> Result<u64, ClientError> {
        let body = self.request_sized("POST", "/campaigns", Some(spec_json))?;
        let value = parse_body(&body)?;
        field(&value, "id")?.as_u64("id").map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Fetches one campaign's status (`GET /campaigns/{id}`).
    pub fn status(&self, id: u64) -> Result<CampaignStatus, ClientError> {
        let body = self.request_sized("GET", &format!("/campaigns/{id}"), None)?;
        parse_status(&parse_body(&body)?)
    }

    /// Lists every campaign the server knows (`GET /campaigns`).
    pub fn list(&self) -> Result<Vec<CampaignStatus>, ClientError> {
        let body = self.request_sized("GET", "/campaigns", None)?;
        let value = parse_body(&body)?;
        let entries = field(&value, "campaigns")?
            .as_array("campaigns")
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        entries.iter().map(parse_status).collect()
    }

    /// Fetches the final report document (`GET /campaigns/{id}/report`) —
    /// byte-identical to what `experiments run --spec <spec> --json` prints
    /// for the same spec.
    ///
    /// # Errors
    ///
    /// [`ClientError::Http`] with status 409 while the campaign is still
    /// queued or running.
    pub fn report(&self, id: u64) -> Result<String, ClientError> {
        let body = self.request_sized("GET", &format!("/campaigns/{id}/report"), None)?;
        String::from_utf8(body).map_err(|_| ClientError::Protocol("report is not UTF-8".into()))
    }

    /// Requests cancellation (`POST /campaigns/{id}/cancel`); the campaign
    /// stops at its next fold boundary.
    pub fn cancel(&self, id: u64) -> Result<(), ClientError> {
        self.request_sized("POST", &format!("/campaigns/{id}/cancel"), None)?;
        Ok(())
    }

    /// Tails a campaign's live NDJSON event stream
    /// (`GET /campaigns/{id}/events`) into `sink`, chunk by chunk as events
    /// arrive, returning the total bytes streamed once the stream ends. The
    /// streamed bytes are exactly the campaign's `EventLog` stream — late
    /// subscribers replay it from the start.
    pub fn stream_events(&self, id: u64, sink: &mut dyn Write) -> Result<u64, ClientError> {
        let mut stream = self.open("GET", &format!("/campaigns/{id}/events"), None)?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let head = read_response_head(&mut reader)?;
        if head.status != 200 {
            return Err(self.error_from(&mut reader, &head));
        }
        if !head.chunked {
            return Err(ClientError::Protocol("event stream is not chunked".into()));
        }
        Ok(stream_chunked_body(&mut reader, sink)?)
    }

    /// [`stream_events`](Client::stream_events) into a `String`.
    pub fn events(&self, id: u64) -> Result<String, ClientError> {
        let mut bytes = Vec::new();
        self.stream_events(id, &mut bytes)?;
        String::from_utf8(bytes)
            .map_err(|_| ClientError::Protocol("event stream is not UTF-8".into()))
    }

    /// Polls the status every `interval` until the campaign is terminal and
    /// returns the final snapshot.
    pub fn wait_terminal(
        &self,
        id: u64,
        interval: Duration,
    ) -> Result<CampaignStatus, ClientError> {
        loop {
            let status = self.status(id)?;
            if status.is_terminal() {
                return Ok(status);
            }
            std::thread::sleep(interval);
        }
    }

    /// Evicts a terminal campaign from the server
    /// (`DELETE /campaigns/{id}`), freeing its retained event history and
    /// report.
    ///
    /// # Errors
    ///
    /// [`ClientError::Http`] with status 409 while the campaign is still
    /// queued or running, 404 for unknown ids.
    pub fn delete(&self, id: u64) -> Result<(), ClientError> {
        self.request_sized("DELETE", &format!("/campaigns/{id}"), None)?;
        Ok(())
    }

    /// Asks the daemon to shut down cleanly (`POST /shutdown`): it stops
    /// accepting work, drains already-queued campaigns and joins its
    /// workers.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.request_sized("POST", "/shutdown", None)?;
        Ok(())
    }

    /// One request/response cycle with a sized (non-streaming) body.
    fn request_sized(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Vec<u8>, ClientError> {
        let body = body.unwrap_or("");
        let mut stream = self.open(method, path, Some(body.len()))?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let head = read_response_head(&mut reader)?;
        if !(200..300).contains(&head.status) {
            return Err(self.error_from(&mut reader, &head));
        }
        Ok(read_sized_body(&mut reader, &head)?)
    }

    /// Builds the [`ClientError::Http`] for a non-success response, pulling
    /// the message out of the error body when possible.
    fn error_from<R: BufRead>(&self, reader: &mut R, head: &ResponseHead) -> ClientError {
        let message = read_sized_body(reader, head)
            .ok()
            .and_then(|body| String::from_utf8(body).ok())
            .map(|body| {
                json_value::parse(&body)
                    .ok()
                    .and_then(|value| {
                        value.get("error").and_then(|m| m.as_str("error").ok().map(String::from))
                    })
                    .unwrap_or(body)
            })
            .unwrap_or_default();
        ClientError::Http { status: head.status, message }
    }
}

fn parse_body(body: &[u8]) -> Result<json_value::Value, ClientError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
    json_value::parse(text).map_err(ClientError::Protocol)
}

fn field<'a>(
    value: &'a json_value::Value,
    name: &str,
) -> Result<&'a json_value::Value, ClientError> {
    value.get(name).ok_or_else(|| ClientError::Protocol(format!("response lacks `{name}`")))
}

fn parse_status(value: &json_value::Value) -> Result<CampaignStatus, ClientError> {
    let err = |e: mabfuzz::SpecError| ClientError::Protocol(e.to_string());
    Ok(CampaignStatus {
        id: field(value, "id")?.as_u64("id").map_err(err)?,
        status: field(value, "status")?.as_str("status").map_err(err)?.to_owned(),
        label: field(value, "label")?.as_str("label").map_err(err)?.to_owned(),
    })
}
