//! A small blocking client for the campaign service.
//!
//! Connections are pooled: the client keeps idle keep-alive connections and
//! reuses them for later requests, opening a new one only when the pool is
//! empty (so concurrent requests from cloned clients still run in parallel).
//! A pooled socket can go stale — the server idle-times it out between
//! requests — so a request that fails on a *reused* connection before any
//! response arrived is retried exactly once on a fresh connection; failures
//! on fresh connections are real and surface to the caller. It is what the
//! in-tree round-trip tests and `examples/remote_campaign.rs` drive — the
//! whole loop of submit spec → tail events → fetch final report.

use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mabfuzz::json_value;

use crate::http::{
    read_response_head, read_sized_body, stream_chunked_body, ResponseHead,
};
use crate::transport::{Connection, TcpTransport, Transport};

/// Idle connections retained per client (shared across clones). More
/// concurrent requests than this still work — the extras simply close
/// instead of returning to the pool.
const MAX_IDLE_CONNECTIONS: usize = 8;

/// A pooled connection: the buffered reader wraps the connection so any
/// read-ahead bytes stay with the socket across reuses (writes go through
/// `get_mut`).
type Pooled = BufReader<Box<dyn Connection>>;

/// Error kinds that mean "the pooled socket was already dead", the expected
/// fate of an idle keep-alive connection the server timed out. A reused
/// connection failing this way is retried once on a fresh socket; anything
/// else (a real deadline, garbage framing) surfaces to the caller.
fn is_stale(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A socket or framing error.
    Io(io::Error),
    /// The server answered with a non-success status; `message` carries the
    /// body's `error` text (the `SpecError` text for rejected specs).
    Http {
        /// The HTTP status code.
        status: u16,
        /// The server's error message.
        message: String,
    },
    /// The response body did not match the protocol schema.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(error) => write!(f, "I/O error: {error}"),
            ClientError::Http { status, message } => write!(f, "HTTP {status}: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> ClientError {
        ClientError::Io(error)
    }
}

/// The status snapshot of one remote campaign.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// The campaign id.
    pub id: u64,
    /// The lifecycle status: `queued`, `running`, `finished`, `cancelled`
    /// or `failed`.
    pub status: String,
    /// The campaign's report label (`"MABFuzz: UCB"`, `"TheHuzz"`, …).
    pub label: String,
}

impl CampaignStatus {
    /// Whether the campaign will make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(self.status.as_str(), "finished" | "cancelled" | "failed")
    }
}

/// A point-in-time census of one worker, from the `GET /healthz` document —
/// the signal the `experiments fleet` dashboard polls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Campaigns the hub currently tracks (any status).
    pub campaigns: u64,
    /// Jobs queued and waiting for a worker.
    pub queued: u64,
    /// Jobs a worker is executing right now.
    pub running: u64,
    /// The configured `--max-queue` bound (`None` = unbounded).
    pub capacity: Option<u64>,
}

/// A blocking campaign-service client.
///
/// Cloning is cheap and clones share the connection pool, so a fleet of
/// threads hammering one worker reuses the same keep-alive connections.
#[derive(Clone)]
pub struct Client {
    addr: SocketAddr,
    transport: Arc<dyn Transport>,
    auth_token: Option<String>,
    pool: Arc<Mutex<Vec<Pooled>>>,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("auth", &self.auth_token.is_some())
            .finish()
    }
}

impl Client {
    /// A client for the daemon at `addr` (plain TCP, no deadlines, no auth).
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            transport: Arc::new(TcpTransport::default()),
            auth_token: None,
            pool: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Resolves `addr` (e.g. `"127.0.0.1:8080"`) and builds a client for it.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the address does not resolve.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("`{addr}` resolves to nothing")))?;
        Ok(Client::new(addr))
    }

    /// Routes every connection through `transport` — the dispatch
    /// coordinator's deadline-bearing [`TcpTransport`] or a chaos suite's
    /// [`FaultyTransport`](crate::FaultyTransport). Pooled connections from
    /// the previous transport are discarded.
    pub fn with_transport(mut self, transport: Arc<dyn Transport>) -> Client {
        self.transport = transport;
        self.pool = Arc::new(Mutex::new(Vec::new()));
        self
    }

    /// Applies connect/read/write deadlines to every request (`None`
    /// restores unbounded I/O). A convenience for
    /// [`with_transport`](Client::with_transport) over a deadline-bearing
    /// [`TcpTransport`].
    pub fn with_deadline(self, timeout: Option<Duration>) -> Client {
        self.with_transport(Arc::new(TcpTransport::with_deadlines(timeout)))
    }

    /// Sends `Authorization: Bearer <token>` on every request — required
    /// when the daemon runs with `--auth-token`.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> Client {
        self.auth_token = Some(token.into());
        self
    }

    /// The server address this client targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Takes an idle pooled connection (second tuple element `true`) or
    /// opens a fresh one (`false`).
    fn checkout(&self) -> Result<(Pooled, bool), ClientError> {
        if let Some(conn) = self.pool.lock().expect("connection pool lock").pop() {
            return Ok((conn, true));
        }
        Ok((BufReader::new(self.transport.connect(self.addr)?), false))
    }

    /// Returns a connection to the pool after a fully consumed keep-alive
    /// response. A connection with unread buffered bytes is desynchronised
    /// (the response was not consumed exactly) and is dropped instead —
    /// never pool a socket whose framing position is in doubt.
    fn checkin(&self, conn: Pooled) {
        if !conn.buffer().is_empty() {
            return;
        }
        let mut pool = self.pool.lock().expect("connection pool lock");
        if pool.len() < MAX_IDLE_CONNECTIONS {
            pool.push(conn);
        }
    }

    /// One request over a pooled or fresh connection, up to the parsed
    /// response head (the body is left for the caller). A reused connection
    /// that turns out to be stale is retried exactly once on a fresh one.
    fn send_request(
        &self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(Pooled, ResponseHead), ClientError> {
        let (conn, reused) = self.checkout()?;
        match self.try_send(conn, method, path, body) {
            Ok(exchange) => Ok(exchange),
            Err(error) if reused && is_stale(error.kind()) => {
                // The server idle-timed the pooled socket out between our
                // requests (the expected end of a keep-alive connection's
                // life). One fresh connection; its errors are real.
                let conn = BufReader::new(self.transport.connect(self.addr)?);
                Ok(self.try_send(conn, method, path, body)?)
            }
            Err(error) => Err(error.into()),
        }
    }

    /// Writes one request and reads the response head on `conn`.
    fn try_send(
        &self,
        mut conn: Pooled,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<(Pooled, ResponseHead)> {
        conn.get_mut().begin_request();
        let auth = match &self.auth_token {
            Some(token) => format!("Authorization: Bearer {token}\r\n"),
            None => String::new(),
        };
        write!(
            conn.get_mut(),
            "{method} {path} HTTP/1.1\r\nHost: {}\r\n{auth}Content-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        )?;
        conn.get_mut().write_all(body.as_bytes())?;
        conn.get_mut().flush()?;
        let head = read_response_head(&mut conn)?;
        Ok((conn, head))
    }

    /// Probes `GET /healthz` and returns the server's campaign count — the
    /// heartbeat the dispatch coordinator uses to readmit quarantined
    /// workers. The probe is deliberately exempt from auth (see the crate
    /// docs), so it works regardless of token configuration.
    pub fn healthz(&self) -> Result<u64, ClientError> {
        let body = self.request_sized("GET", "/healthz", None)?;
        let value = parse_body(&body)?;
        let status = field(&value, "status")?
            .as_str("status")
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        if status != "ok" {
            return Err(ClientError::Protocol(format!("healthz status `{status}`")));
        }
        field(&value, "campaigns")?
            .as_u64("campaigns")
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Fetches the full `GET /healthz` census — tracked campaigns, queue
    /// depth, running jobs and the configured `--max-queue` bound — for
    /// fleet dashboards. [`healthz`](Client::healthz) is the cheap liveness
    /// probe form of the same request.
    pub fn health_snapshot(&self) -> Result<HealthSnapshot, ClientError> {
        let body = self.request_sized("GET", "/healthz", None)?;
        let value = parse_body(&body)?;
        let err = |e: mabfuzz::SpecError| ClientError::Protocol(e.to_string());
        let status = field(&value, "status")?.as_str("status").map_err(err)?;
        if status != "ok" {
            return Err(ClientError::Protocol(format!("healthz status `{status}`")));
        }
        let capacity = match value.get("capacity") {
            None => None,
            Some(entry) if entry.is_null() => None,
            Some(entry) => Some(entry.as_u64("capacity").map_err(err)?),
        };
        Ok(HealthSnapshot {
            campaigns: field(&value, "campaigns")?.as_u64("campaigns").map_err(err)?,
            queued: field(&value, "queued")?.as_u64("queued").map_err(err)?,
            running: field(&value, "running")?.as_u64("running").map_err(err)?,
            capacity,
        })
    }

    /// Submits a campaign-spec JSON document (`POST /campaigns`) and returns
    /// the assigned campaign id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Http`] with status 400 and the strict codec's
    /// `SpecError` text when the spec is rejected.
    pub fn submit(&self, spec_json: &str) -> Result<u64, ClientError> {
        let body = self.request_sized("POST", "/campaigns", Some(spec_json))?;
        let value = parse_body(&body)?;
        field(&value, "id")?.as_u64("id").map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Fetches one campaign's status (`GET /campaigns/{id}`).
    pub fn status(&self, id: u64) -> Result<CampaignStatus, ClientError> {
        let body = self.request_sized("GET", &format!("/campaigns/{id}"), None)?;
        parse_status(&parse_body(&body)?)
    }

    /// Lists every campaign the server knows (`GET /campaigns`).
    pub fn list(&self) -> Result<Vec<CampaignStatus>, ClientError> {
        let body = self.request_sized("GET", "/campaigns", None)?;
        let value = parse_body(&body)?;
        let entries = field(&value, "campaigns")?
            .as_array("campaigns")
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        entries.iter().map(parse_status).collect()
    }

    /// Fetches the final report document (`GET /campaigns/{id}/report`) —
    /// byte-identical to what `experiments run --spec <spec> --json` prints
    /// for the same spec.
    ///
    /// # Errors
    ///
    /// [`ClientError::Http`] with status 409 while the campaign is still
    /// queued or running.
    pub fn report(&self, id: u64) -> Result<String, ClientError> {
        let body = self.request_sized("GET", &format!("/campaigns/{id}/report"), None)?;
        String::from_utf8(body).map_err(|_| ClientError::Protocol("report is not UTF-8".into()))
    }

    /// Requests cancellation (`POST /campaigns/{id}/cancel`); the campaign
    /// stops at its next fold boundary.
    pub fn cancel(&self, id: u64) -> Result<(), ClientError> {
        self.request_sized("POST", &format!("/campaigns/{id}/cancel"), None)?;
        Ok(())
    }

    /// Tails a campaign's live NDJSON event stream
    /// (`GET /campaigns/{id}/events`) into `sink`, chunk by chunk as events
    /// arrive, returning the total bytes streamed once the stream ends. The
    /// streamed bytes are exactly the campaign's `EventLog` stream — late
    /// subscribers replay it from the start.
    pub fn stream_events(&self, id: u64, sink: &mut dyn Write) -> Result<u64, ClientError> {
        let (mut conn, head) =
            self.send_request("GET", &format!("/campaigns/{id}/events"), "")?;
        if head.status != 200 {
            return Err(self.consume_error(conn, &head));
        }
        if !head.chunked {
            return Err(ClientError::Protocol("event stream is not chunked".into()));
        }
        let total = stream_chunked_body(&mut conn, sink)?;
        // Chunked framing is self-terminating: the stream's end leaves the
        // connection at a clean request boundary, ready for reuse.
        if !head.close {
            self.checkin(conn);
        }
        Ok(total)
    }

    /// [`stream_events`](Client::stream_events) into a `String`.
    pub fn events(&self, id: u64) -> Result<String, ClientError> {
        let mut bytes = Vec::new();
        self.stream_events(id, &mut bytes)?;
        String::from_utf8(bytes)
            .map_err(|_| ClientError::Protocol("event stream is not UTF-8".into()))
    }

    /// Polls the status every `interval` until the campaign is terminal and
    /// returns the final snapshot.
    pub fn wait_terminal(
        &self,
        id: u64,
        interval: Duration,
    ) -> Result<CampaignStatus, ClientError> {
        loop {
            let status = self.status(id)?;
            if status.is_terminal() {
                return Ok(status);
            }
            std::thread::sleep(interval);
        }
    }

    /// Evicts a terminal campaign from the server
    /// (`DELETE /campaigns/{id}`), freeing its retained event history and
    /// report.
    ///
    /// # Errors
    ///
    /// [`ClientError::Http`] with status 409 while the campaign is still
    /// queued or running, 404 for unknown ids.
    pub fn delete(&self, id: u64) -> Result<(), ClientError> {
        self.request_sized("DELETE", &format!("/campaigns/{id}"), None)?;
        Ok(())
    }

    /// Asks the daemon to shut down cleanly (`POST /shutdown`): it stops
    /// accepting work, drains already-queued campaigns and joins its
    /// workers.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.request_sized("POST", "/shutdown", None)?;
        Ok(())
    }

    /// One request/response cycle with a sized (non-streaming) body.
    fn request_sized(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Vec<u8>, ClientError> {
        let (mut conn, head) = self.send_request(method, path, body.unwrap_or(""))?;
        if !(200..300).contains(&head.status) {
            return Err(self.consume_error(conn, &head));
        }
        let bytes = read_sized_body(&mut conn, &head)?;
        if !head.close {
            self.checkin(conn);
        }
        Ok(bytes)
    }

    /// Builds the [`ClientError::Http`] for a non-success response, pulling
    /// the message out of the error body when possible. The connection
    /// returns to the pool when the error body was fully consumed — an
    /// error response is still a complete keep-alive exchange.
    fn consume_error(&self, mut conn: Pooled, head: &ResponseHead) -> ClientError {
        match read_sized_body(&mut conn, head) {
            Ok(bytes) => {
                if !head.close {
                    self.checkin(conn);
                }
                let message = String::from_utf8(bytes)
                    .ok()
                    .map(|body| {
                        json_value::parse(&body)
                            .ok()
                            .and_then(|value| {
                                value
                                    .get("error")
                                    .and_then(|m| m.as_str("error").ok().map(String::from))
                            })
                            .unwrap_or(body)
                    })
                    .unwrap_or_default();
                ClientError::Http { status: head.status, message }
            }
            Err(error) => ClientError::Io(error),
        }
    }
}

fn parse_body(body: &[u8]) -> Result<json_value::Value, ClientError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
    json_value::parse(text).map_err(ClientError::Protocol)
}

fn field<'a>(
    value: &'a json_value::Value,
    name: &str,
) -> Result<&'a json_value::Value, ClientError> {
    value.get(name).ok_or_else(|| ClientError::Protocol(format!("response lacks `{name}`")))
}

fn parse_status(value: &json_value::Value) -> Result<CampaignStatus, ClientError> {
    let err = |e: mabfuzz::SpecError| ClientError::Protocol(e.to_string());
    Ok(CampaignStatus {
        id: field(value, "id")?.as_u64("id").map_err(err)?,
        status: field(value, "status")?.as_str("status").map_err(err)?.to_owned(),
        label: field(value, "label")?.as_str("label").map_err(err)?.to_owned(),
    })
}
