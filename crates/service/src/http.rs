//! A minimal, dependency-free HTTP/1.1 subset for the campaign service.
//!
//! The workspace is offline-shimmed, so the wire layer is hand-rolled over
//! `std::net` — exactly the subset the campaign protocol needs and nothing
//! more: HTTP/1.1 keep-alive connections carrying any number of sequential
//! requests, `Content-Length` request bodies, and chunked transfer encoding
//! for the live event streams. Either side may end the conversation with a
//! `Connection: close` header; protocol errors always close. Both the server
//! and the [`Client`](crate::Client) speak through these helpers, so the two
//! ends of the protocol cannot drift apart.
//!
//! Because connections are reused, request framing is strict: a request
//! carrying `Transfer-Encoding`, or duplicate/conflicting `Content-Length`
//! headers, is rejected outright — ambiguous framing on a reused connection
//! is the classic request-smuggling shape, so it is a loud 400, never a
//! guess.

use std::io::{self, BufRead, Write};

pub(crate) use mabfuzz::report::json_string;

/// Upper bound on a request body (campaign specs are a few KiB; a service
/// must not buffer unbounded attacker-controlled input).
pub(crate) const MAX_BODY_BYTES: usize = 1 << 20;

/// Upper bound on header count — enough for any real client, small enough
/// to bound a hostile request.
const MAX_HEADERS: usize = 64;

/// Upper bound on a single response chunk. The server writes chunks sized
/// by event-broadcast batches (KiB, not MiB); a hostile peer declaring a
/// multi-gigabyte chunk must not make the client materialise it.
const MAX_CHUNK_BYTES: usize = 4 << 20;

/// Upper bound on any single protocol line (request line, header, chunk
/// size). `read_line` alone would buffer a newline-free byte stream without
/// limit; every line in this module goes through [`read_line_capped`] so a
/// hostile peer cannot grow memory past this.
const MAX_LINE_BYTES: u64 = 8 * 1024;

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`] bytes.
/// `Ok(None)` is a clean EOF before any byte; an overlong line is an error.
fn read_line_capped<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    // UFCS pins `Self = &mut R` so `take` borrows the reader instead of
    // consuming it (plain `reader.take(..)` auto-derefs and moves `*reader`).
    let read = io::Read::take(reader, MAX_LINE_BYTES).read_line(&mut line)?;
    if read == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') && read as u64 == MAX_LINE_BYTES {
        return Err(protocol_error(format!(
            "protocol line exceeds the {MAX_LINE_BYTES}-byte limit"
        )));
    }
    Ok(Some(line))
}

/// One parsed request: method, path, (possibly empty) body, the
/// `Authorization` header value if the client sent one, and whether the
/// client asked for the connection to close after this exchange (the only
/// non-framing headers the protocol consumes — see the auth and keep-alive
/// sections of the crate docs).
#[derive(Debug)]
pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    pub authorization: Option<String>,
    pub close: bool,
}

/// Whether a `Connection` header value asks for the connection to close
/// (token list, case-insensitive per RFC 9110).
fn wants_close(value: &str) -> bool {
    value.split(',').any(|token| token.trim().eq_ignore_ascii_case("close"))
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// without sending anything (a keep-alive peer finishing its conversation,
/// or the server's shutdown self-wake).
pub(crate) fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let Some(line) = read_line_capped(reader)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(path), Some(version)) => (method, path, version),
        _ => return Err(protocol_error(format!("malformed request line `{}`", line.trim_end()))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(protocol_error(format!("unsupported protocol `{version}`")));
    }
    let request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body: Vec::new(),
        authorization: None,
        close: false,
    };
    let headers = read_headers(reader)?;
    let authorization = header_value(&headers, "authorization").map(str::to_owned);
    let close = header_value(&headers, "connection").is_some_and(wants_close);
    // Ambiguous framing is a smuggling vector once connections are reused:
    // if the two ends ever disagreed about where a request body ends, every
    // later request on the connection would be parsed out of attacker-chosen
    // bytes. The protocol never uses chunked *requests*, so any
    // `Transfer-Encoding` is rejected, as are duplicate or conflicting
    // `Content-Length` headers — loudly, not by picking one.
    if header_value(&headers, "transfer-encoding").is_some() {
        return Err(protocol_error(
            "requests must use Content-Length framing; Transfer-Encoding is not accepted",
        ));
    }
    let mut content_length: Option<usize> = None;
    for (name, value) in &headers {
        if name != "content-length" {
            continue;
        }
        let parsed = value
            .parse::<usize>()
            .map_err(|_| protocol_error(format!("invalid Content-Length `{value}`")))?;
        if content_length.is_some_and(|seen| seen != parsed) {
            return Err(protocol_error("conflicting Content-Length headers"));
        }
        if content_length.is_some() {
            return Err(protocol_error("duplicate Content-Length headers"));
        }
        content_length = Some(parsed);
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(protocol_error(format!(
            "request body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { body, authorization, close, ..request }))
}

/// Reads header lines until the blank separator, lower-casing names.
fn read_headers<R: BufRead>(reader: &mut R) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line_capped(reader)? else {
            return Err(protocol_error("connection closed inside the header block"));
        };
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(protocol_error("too many headers"));
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
            }
            None => return Err(protocol_error(format!("malformed header `{line}`"))),
        }
    }
}

fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(key, _)| key == name).map(|(_, value)| value.as_str())
}

/// The reason phrase of the status codes the service emits.
pub(crate) fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// The `Connection` response header for a keep-alive or closing exchange.
fn connection_header(close: bool) -> &'static str {
    if close {
        "close"
    } else {
        "keep-alive"
    }
}

/// Writes a complete JSON response (`Content-Length` framing). `close`
/// announces that the server will close the connection after this response;
/// otherwise the connection stays open for the next request.
pub(crate) fn respond_json(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    close: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\
         Connection: {}\r\n\r\n",
        status_text(status),
        body.len(),
        connection_header(close)
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// Writes an error response whose body is `{"error":"<message>"}`.
pub(crate) fn respond_error(
    writer: &mut impl Write,
    status: u16,
    message: &str,
    close: bool,
) -> io::Result<()> {
    respond_json(writer, status, &format!("{{\"error\":{}}}", json_string(message)), close)
}

/// Starts a chunked NDJSON response; follow with [`write_chunk`] per payload
/// and one [`finish_chunked`]. Chunked framing is self-terminating, so the
/// connection survives the stream unless `close` is set.
pub(crate) fn start_chunked(writer: &mut impl Write, close: bool) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
         Transfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        connection_header(close)
    )?;
    writer.flush()
}

/// Writes one non-empty chunk (an empty chunk would terminate the stream).
pub(crate) fn write_chunk(writer: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    debug_assert!(!bytes.is_empty(), "an empty chunk is the terminator");
    write!(writer, "{:x}\r\n", bytes.len())?;
    writer.write_all(bytes)?;
    writer.write_all(b"\r\n")?;
    writer.flush()
}

/// Writes the terminating zero-length chunk.
pub(crate) fn finish_chunked(writer: &mut impl Write) -> io::Result<()> {
    writer.write_all(b"0\r\n\r\n")?;
    writer.flush()
}

/// The parsed status line and framing headers of a response.
#[derive(Debug)]
pub(crate) struct ResponseHead {
    pub status: u16,
    pub chunked: bool,
    pub content_length: Option<usize>,
    /// The server announced it will close the connection after this
    /// response, so the client must not pool it for reuse.
    pub close: bool,
}

/// Reads a response's status line and headers, leaving the reader at the
/// first body byte.
pub(crate) fn read_response_head<R: BufRead>(reader: &mut R) -> io::Result<ResponseHead> {
    let Some(line) = read_line_capped(reader)? else {
        // `UnexpectedEof`, not `InvalidData`: a clean close before the
        // status line is the signature of a stale pooled connection, which
        // the client's reconnect-once logic keys on the error kind.
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    };
    let mut parts = line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => {
            code.parse::<u16>().map_err(|_| {
                protocol_error(format!("malformed status line `{}`", line.trim_end()))
            })?
        }
        _ => return Err(protocol_error(format!("malformed status line `{}`", line.trim_end()))),
    };
    let headers = read_headers(reader)?;
    let chunked = header_value(&headers, "transfer-encoding")
        .is_some_and(|value| value.eq_ignore_ascii_case("chunked"));
    let content_length = header_value(&headers, "content-length")
        .map(|value| {
            value
                .parse::<usize>()
                .map_err(|_| protocol_error(format!("invalid Content-Length `{value}`")))
        })
        .transpose()?;
    let close = header_value(&headers, "connection").is_some_and(wants_close);
    Ok(ResponseHead { status, chunked, content_length, close })
}

/// Reads a `Content-Length`-framed body (the non-streaming endpoints).
pub(crate) fn read_sized_body<R: BufRead>(
    reader: &mut R,
    head: &ResponseHead,
) -> io::Result<Vec<u8>> {
    let length = head.content_length.ok_or_else(|| {
        protocol_error("response carries neither Content-Length nor chunked framing")
    })?;
    if length > MAX_BODY_BYTES {
        return Err(protocol_error(format!(
            "response body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Decodes a chunked body, forwarding each chunk's payload to `sink` as it
/// arrives (this is how the client tails a live event stream). Returns the
/// total payload bytes streamed.
pub(crate) fn stream_chunked_body<R: BufRead>(
    reader: &mut R,
    sink: &mut dyn Write,
) -> io::Result<u64> {
    let mut total = 0u64;
    let mut chunk = Vec::new();
    loop {
        let Some(size_line) = read_line_capped(reader)? else {
            return Err(protocol_error("connection closed inside the chunked body"));
        };
        let size_token = size_line.trim().split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_token, 16)
            .map_err(|_| protocol_error(format!("invalid chunk size `{size_token}`")))?;
        if size > MAX_CHUNK_BYTES {
            return Err(protocol_error(format!(
                "chunk of {size} bytes exceeds the {MAX_CHUNK_BYTES}-byte limit"
            )));
        }
        if size == 0 {
            // Trailer section: header lines (none in practice) up to the
            // final blank line; tolerated but ignored.
            let _ = read_headers(reader);
            return Ok(total);
        }
        chunk.resize(size, 0);
        reader.read_exact(&mut chunk)?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(protocol_error("chunk payload not terminated by CRLF"));
        }
        sink.write_all(&chunk)?;
        total += size as u64;
    }
}

fn protocol_error(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    #[test]
    fn requests_parse_method_path_and_body() {
        let raw = b"POST /campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let request = read_request(&mut BufReader::new(Cursor::new(&raw[..])))
            .unwrap()
            .expect("a full request");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/campaigns");
        assert_eq!(request.body, b"{\"a\"");
        assert!(!request.close, "absent Connection header keeps the connection alive");
    }

    #[test]
    fn connection_close_requests_are_flagged() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: Close\r\n\r\n";
        let request = read_request(&mut BufReader::new(Cursor::new(&raw[..])))
            .unwrap()
            .expect("a full request");
        assert!(request.close, "Connection: close is honoured case-insensitively");
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        let request = read_request(&mut BufReader::new(Cursor::new(&raw[..])))
            .unwrap()
            .expect("a full request");
        assert!(!request.close);
    }

    #[test]
    fn ambiguously_framed_requests_are_rejected_loudly() {
        // Transfer-Encoding on a request: the protocol never chunks request
        // bodies, so this is either a confused client or a smuggling probe.
        let raw = b"POST /campaigns HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let error = read_request(&mut BufReader::new(Cursor::new(&raw[..])))
            .expect_err("transfer-encoding rejected");
        assert!(error.to_string().contains("Transfer-Encoding"), "{error}");

        // Conflicting Content-Length values: no winner is picked.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody";
        let error = read_request(&mut BufReader::new(Cursor::new(&raw[..])))
            .expect_err("conflicting lengths rejected");
        assert!(error.to_string().contains("conflicting Content-Length"), "{error}");

        // Even *agreeing* duplicates are rejected: a proxy that folds them
        // differently than we do would de-sync the connection.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        let error = read_request(&mut BufReader::new(Cursor::new(&raw[..])))
            .expect_err("duplicate lengths rejected");
        assert!(error.to_string().contains("duplicate Content-Length"), "{error}");
    }

    #[test]
    fn empty_connections_and_garbage_fail_cleanly() {
        assert!(
            read_request(&mut BufReader::new(Cursor::new(&b""[..]))).unwrap().is_none(),
            "a silent close is not an error"
        );
        let error = read_request(&mut BufReader::new(Cursor::new(&b"nonsense\r\n\r\n"[..])))
            .expect_err("malformed request line");
        assert!(error.to_string().contains("malformed request line"), "{error}");
        let raw = b"GET / HTTP/1.1\r\nContent-Length: lots\r\n\r\n";
        let error = read_request(&mut BufReader::new(Cursor::new(&raw[..])))
            .expect_err("bogus length");
        assert!(error.to_string().contains("invalid Content-Length"), "{error}");
    }

    #[test]
    fn newline_free_streams_cannot_grow_memory_unboundedly() {
        // A peer that never sends `\n` is cut off at MAX_LINE_BYTES, not
        // buffered forever: the request line, the header block and chunk
        // size lines all read through the capped line reader.
        let endless = "X".repeat(MAX_LINE_BYTES as usize + 1);
        let error = read_request(&mut BufReader::new(Cursor::new(endless.clone().into_bytes())))
            .expect_err("capped request line");
        assert!(error.to_string().contains("byte limit"), "{error}");
        let raw = format!("GET / HTTP/1.1\r\n{endless}");
        let error = read_request(&mut BufReader::new(Cursor::new(raw.into_bytes())))
            .expect_err("capped header line");
        assert!(error.to_string().contains("byte limit"), "{error}");
    }

    #[test]
    fn oversized_bodies_are_rejected_before_buffering() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let error = read_request(&mut BufReader::new(Cursor::new(raw.into_bytes())))
            .expect_err("limit enforced");
        assert!(error.to_string().contains("exceeds"), "{error}");
    }

    #[test]
    fn responses_round_trip_sized_bodies() {
        let mut wire = Vec::new();
        respond_json(&mut wire, 201, "{\"id\":7}", false).unwrap();
        let mut reader = BufReader::new(Cursor::new(wire));
        let head = read_response_head(&mut reader).unwrap();
        assert_eq!(head.status, 201);
        assert!(!head.chunked);
        assert!(!head.close, "keep-alive responses leave the connection open");
        assert_eq!(read_sized_body(&mut reader, &head).unwrap(), b"{\"id\":7}");
    }

    #[test]
    fn closing_responses_announce_connection_close() {
        let mut wire = Vec::new();
        respond_json(&mut wire, 200, "{}", true).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("Connection: close"), "{text}");
        let head = read_response_head(&mut BufReader::new(Cursor::new(wire))).unwrap();
        assert!(head.close);
    }

    #[test]
    fn chunked_streams_round_trip_byte_identically() {
        let mut wire = Vec::new();
        start_chunked(&mut wire, false).unwrap();
        write_chunk(&mut wire, b"{\"event\":\"a\"}\n").unwrap();
        write_chunk(&mut wire, b"{\"event\":\"b\"}\n{\"event\":\"c\"}\n").unwrap();
        finish_chunked(&mut wire).unwrap();
        let mut reader = BufReader::new(Cursor::new(wire));
        let head = read_response_head(&mut reader).unwrap();
        assert!(head.chunked);
        let mut decoded = Vec::new();
        let total = stream_chunked_body(&mut reader, &mut decoded).unwrap();
        assert_eq!(decoded, b"{\"event\":\"a\"}\n{\"event\":\"b\"}\n{\"event\":\"c\"}\n");
        assert_eq!(total, decoded.len() as u64);
    }

    #[test]
    fn error_bodies_escape_their_message() {
        let mut wire = Vec::new();
        respond_error(&mut wire, 400, "bad \"spec\"", true).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("{\"error\":\"bad \\\"spec\\\"\"}"), "{text}");
    }
}
