//! Worker-fleet health tracking for the dispatch coordinator.
//!
//! Every remote worker moves through a three-state machine driven by
//! request outcomes and `GET /healthz` heartbeat probes:
//!
//! ```text
//!            failure                 retire_threshold consecutive failures
//! Healthy ───────────► Quarantined ─────────────────────────► Retired
//!    ▲                     │                                      │
//!    └─────────────────────┴──────── successful /healthz ◄────────┘
//!                                    probe (readmission)
//! ```
//!
//! * **Healthy** workers receive new campaigns (round-robin).
//! * **Quarantined** workers receive no new campaigns until a heartbeat
//!   probe succeeds; each further failure counts toward retirement.
//! * **Retired** workers are probed at most once per pick cycle; a
//!   successful probe readmits them (a rebooted worker rejoins the fleet
//!   without coordinator restart).
//!
//! The machine itself is pure state (no I/O): the coordinator performs the
//! probes and feeds the verdicts back through
//! [`record_success`](FleetHealth::record_success) /
//! [`record_failure`](FleetHealth::record_failure), which keeps this module
//! trivially testable and the locking window tiny.

use std::sync::Mutex;

/// Consecutive failures (from quarantine entry) after which a worker is
/// retired.
pub const DEFAULT_RETIRE_THRESHOLD: u32 = 3;

/// The lifecycle state of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Eligible for new campaigns.
    Healthy,
    /// Recently failed; held out until a heartbeat succeeds.
    Quarantined,
    /// Failed repeatedly; probed only as a last resort.
    Retired,
}

#[derive(Debug, Clone, Copy)]
struct WorkerHealth {
    state: WorkerState,
    consecutive_failures: u32,
}

/// Health registry over the coordinator's worker fleet, keyed by the
/// worker's index in the `--workers` list.
pub struct FleetHealth {
    workers: Mutex<Vec<WorkerHealth>>,
    retire_threshold: u32,
}

impl FleetHealth {
    /// A fleet of `count` workers, all healthy, retiring after
    /// [`DEFAULT_RETIRE_THRESHOLD`] consecutive failures.
    pub fn new(count: usize) -> FleetHealth {
        FleetHealth::with_retire_threshold(count, DEFAULT_RETIRE_THRESHOLD)
    }

    /// A fleet with an explicit retirement threshold (clamped to ≥ 1).
    pub fn with_retire_threshold(count: usize, retire_threshold: u32) -> FleetHealth {
        FleetHealth {
            workers: Mutex::new(vec![
                WorkerHealth { state: WorkerState::Healthy, consecutive_failures: 0 };
                count
            ]),
            retire_threshold: retire_threshold.max(1),
        }
    }

    /// Number of workers tracked.
    pub fn len(&self) -> usize {
        self.workers.lock().expect("fleet lock").len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The state of worker `index`.
    pub fn state(&self, index: usize) -> WorkerState {
        self.workers.lock().expect("fleet lock")[index].state
    }

    /// Records a successful request or heartbeat: the worker returns to
    /// `Healthy` from any state and its failure streak resets.
    pub fn record_success(&self, index: usize) {
        let mut workers = self.workers.lock().expect("fleet lock");
        workers[index] =
            WorkerHealth { state: WorkerState::Healthy, consecutive_failures: 0 };
    }

    /// Records a failed request or heartbeat: `Healthy` workers are
    /// quarantined; quarantined workers retire once their streak reaches
    /// the threshold.
    pub fn record_failure(&self, index: usize) {
        let mut workers = self.workers.lock().expect("fleet lock");
        let worker = &mut workers[index];
        worker.consecutive_failures = worker.consecutive_failures.saturating_add(1);
        worker.state = if worker.consecutive_failures >= self.retire_threshold {
            WorkerState::Retired
        } else {
            WorkerState::Quarantined
        };
    }

    /// The healthy worker following `after` in round-robin order, if any.
    /// Pass the previous pick to spread campaigns across the fleet.
    pub fn pick_healthy(&self, after: usize) -> Option<usize> {
        let workers = self.workers.lock().expect("fleet lock");
        let count = workers.len();
        (1..=count)
            .map(|step| (after + step) % count)
            .find(|&index| workers[index].state == WorkerState::Healthy)
    }

    /// Every worker that is *not* healthy, in probe priority order:
    /// quarantined first (cheapest to readmit), then retired.
    pub fn probe_candidates(&self) -> Vec<usize> {
        let workers = self.workers.lock().expect("fleet lock");
        let mut quarantined = Vec::new();
        let mut retired = Vec::new();
        for (index, worker) in workers.iter().enumerate() {
            match worker.state {
                WorkerState::Quarantined => quarantined.push(index),
                WorkerState::Retired => retired.push(index),
                WorkerState::Healthy => {}
            }
        }
        quarantined.extend(retired);
        quarantined
    }

    /// Whether no worker is currently healthy.
    pub fn all_unusable(&self) -> bool {
        self.workers
            .lock()
            .expect("fleet lock")
            .iter()
            .all(|worker| worker.state != WorkerState::Healthy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_quarantine_then_retire_and_success_readmits() {
        let fleet = FleetHealth::with_retire_threshold(2, 3);
        assert_eq!(fleet.state(0), WorkerState::Healthy);
        fleet.record_failure(0);
        assert_eq!(fleet.state(0), WorkerState::Quarantined);
        fleet.record_failure(0);
        assert_eq!(fleet.state(0), WorkerState::Quarantined);
        fleet.record_failure(0);
        assert_eq!(fleet.state(0), WorkerState::Retired, "threshold reached");
        fleet.record_success(0);
        assert_eq!(fleet.state(0), WorkerState::Healthy, "a heartbeat readmits");
        fleet.record_failure(0);
        assert_eq!(fleet.state(0), WorkerState::Quarantined, "the streak reset on readmission");
    }

    #[test]
    fn round_robin_skips_unhealthy_workers() {
        let fleet = FleetHealth::new(3);
        assert_eq!(fleet.pick_healthy(0), Some(1));
        assert_eq!(fleet.pick_healthy(2), Some(0), "wraps around");
        fleet.record_failure(1);
        assert_eq!(fleet.pick_healthy(0), Some(2), "quarantined workers are skipped");
        fleet.record_failure(0);
        fleet.record_failure(2);
        assert_eq!(fleet.pick_healthy(0), None, "no healthy worker left");
        assert!(fleet.all_unusable());
    }

    #[test]
    fn probe_candidates_order_quarantined_before_retired() {
        let fleet = FleetHealth::with_retire_threshold(3, 1);
        fleet.record_failure(0); // retired immediately (threshold 1)
        let fleet2 = FleetHealth::with_retire_threshold(3, 5);
        fleet2.record_failure(2); // quarantined
        assert_eq!(fleet.probe_candidates(), vec![0]);
        assert_eq!(fleet2.probe_candidates(), vec![2]);

        let mixed = FleetHealth::with_retire_threshold(3, 2);
        mixed.record_failure(0);
        mixed.record_failure(0); // retired
        mixed.record_failure(2); // quarantined
        assert_eq!(mixed.probe_candidates(), vec![2, 0], "quarantined probe first");
    }

    #[test]
    fn fleet_reports_its_size() {
        assert_eq!(FleetHealth::new(4).len(), 4);
        assert!(FleetHealth::new(0).is_empty());
        assert!(FleetHealth::new(0).all_unusable());
    }
}
