//! Live fleet dashboard — the renderer behind `experiments fleet`.
//!
//! A [`FleetMonitor`] watches a fleet of `experiments serve` workers and
//! periodically prints one status line per worker, in the same
//! pipe-separated stderr convention as the single-campaign
//! `ProgressMonitor`:
//!
//! ```text
//! [fleet] 127.0.0.1:4000 | healthy | queue 2/8 | running 2 | campaign #5 MABFuzz: UCB | 1520 tests/sec | coverage 42.1% (842/2000) | detections 0
//! [fleet] 127.0.0.1:4001 | quarantined | unreachable: I/O error: Connection refused
//! ```
//!
//! Two signals feed each line:
//!
//! * the unauthenticated `GET /healthz` census ([`HealthSnapshot`]): queue
//!   depth against the `--max-queue` bound, running jobs, tracked
//!   campaigns. Probe outcomes also drive a per-worker [`FleetHealth`]
//!   state machine, so the dashboard shows the same
//!   healthy → quarantined → retired lifecycle the dispatch coordinator
//!   acts on (and readmits workers the same way).
//! * one live NDJSON event feed per worker: a background tailer follows the
//!   event stream of the worker's oldest running campaign
//!   (`GET /campaigns/{id}/events`) and folds `test_folded` /
//!   `coverage_milestone` / `campaign_finished` events into throughput and
//!   coverage counters the renderer samples every frame. When the tailed
//!   campaign finishes, the tailer moves on to the next running campaign.
//!
//! Like the `ProgressMonitor`, the dashboard is best-effort by contract:
//! it observes, it never steers, and a write error or an unreachable
//! worker only changes what gets printed. Nothing here feeds back into
//! campaign execution, so attaching a dashboard cannot perturb any
//! deterministic artefact.

use std::io::{self, Write};
// detlint: allow-file(wall-clock) -- the dashboard prints live tests/sec
// lines to a caller-supplied sink (stderr in the CLI); no deterministic
// artefact ever sees a reading.
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mabfuzz::json_value;

use crate::client::Client;
use crate::dispatch::MAX_EVENT_LINE_BYTES;
use crate::health::{FleetHealth, WorkerState};

/// Progress counters one event-feed tailer folds for the renderer.
#[derive(Debug, Default, Clone)]
struct LaneStats {
    /// The campaign being tailed and its report label.
    campaign: Option<(u64, String)>,
    /// Tests folded so far (`test_folded.test_number`).
    tests: u64,
    /// Coverage points hit so far.
    covered: u64,
    /// The campaign's coverage-space size (0 until a milestone reports it).
    space_len: u64,
    /// Detections observed in the tailed stream.
    detections: u64,
    /// Set when the tailed stream ended (terminal campaign).
    done: bool,
}

/// A `Write` sink that parses a live NDJSON event stream into [`LaneStats`]
/// as chunks arrive, buffering only the current partial line.
struct LaneFold {
    stats: Arc<Mutex<LaneStats>>,
    line: Vec<u8>,
}

impl LaneFold {
    fn fold_line(&self, line: &[u8]) {
        let Ok(text) = std::str::from_utf8(line) else { return };
        let Ok(value) = json_value::parse(text) else { return };
        let Some(event) = value.get("event").and_then(|v| v.as_str("event").ok()) else {
            return;
        };
        let number = |name: &str| value.get(name).and_then(|v| v.as_u64(name).ok());
        let mut stats = self.stats.lock().expect("lane stats lock");
        match event {
            "test_folded" => {
                if let Some(test_number) = number("test_number") {
                    stats.tests = test_number;
                }
                if let Some(covered) = number("covered") {
                    stats.covered = covered;
                }
                if value.get("detected").is_some_and(|v| v.as_bool("detected").unwrap_or(false))
                {
                    stats.detections += 1;
                }
            }
            "coverage_milestone" => {
                if let Some(space_len) = number("space_len") {
                    stats.space_len = space_len;
                }
                if let Some(covered) = number("covered") {
                    stats.covered = covered;
                }
            }
            "campaign_finished" => {
                if let Some(tests) = number("tests_executed") {
                    stats.tests = tests;
                }
                if let Some(covered) = number("final_coverage") {
                    stats.covered = covered;
                }
            }
            _ => {}
        }
    }
}

impl Write for LaneFold {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut rest = buf;
        while let Some(offset) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(offset + 1);
            rest = tail;
            self.line.extend_from_slice(&head[..head.len() - 1]);
            let line = std::mem::take(&mut self.line);
            self.fold_line(&line);
        }
        // A hostile worker emitting one endless line cannot OOM the
        // dashboard: past the bound the partial line is discarded (it would
        // not parse as one event anyway).
        if self.line.len() + rest.len() <= MAX_EVENT_LINE_BYTES {
            self.line.extend_from_slice(rest);
        } else {
            self.line.clear();
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// One monitored worker: its address label, its client, and the event-feed
/// tailer state.
struct Worker {
    label: String,
    client: Client,
    stats: Arc<Mutex<LaneStats>>,
    tailer: Option<JoinHandle<()>>,
    /// `(tests, instant)` at the previous frame, for the tests/sec delta.
    last_sample: Option<(u64, Instant)>,
}

impl Worker {
    /// Starts a tailer for `id` unless one is already running.
    fn ensure_tailer(&mut self, id: u64, label: String) {
        if let Some(handle) = &self.tailer {
            if !handle.is_finished() {
                return;
            }
            // The previous campaign's stream ended: fold its totals away
            // and move to the new campaign.
            if let Some(handle) = self.tailer.take() {
                let _ = handle.join();
            }
        }
        {
            let mut stats = self.stats.lock().expect("lane stats lock");
            let detections = stats.detections;
            *stats = LaneStats {
                campaign: Some((id, label)),
                // Detections accumulate across tailed campaigns: the
                // dashboard reports what the worker found, not one stream.
                detections,
                ..LaneStats::default()
            };
        }
        self.last_sample = None;
        let client = self.client.clone();
        let stats = Arc::clone(&self.stats);
        self.tailer = Some(thread::spawn(move || {
            let mut fold = LaneFold { stats: Arc::clone(&stats), line: Vec::new() };
            let _ = client.stream_events(id, &mut fold);
            stats.lock().expect("lane stats lock").done = true;
        }));
    }
}

/// The live fleet dashboard. See the module docs for the line format and
/// the two signals behind it.
pub struct FleetMonitor {
    workers: Vec<Worker>,
    health: FleetHealth,
    interval: Duration,
}

impl FleetMonitor {
    /// A dashboard over `workers` (address label, client) pairs, rendering
    /// a frame every second until stopped.
    pub fn new(workers: Vec<(String, Client)>) -> FleetMonitor {
        let count = workers.len();
        FleetMonitor {
            workers: workers
                .into_iter()
                .map(|(label, client)| Worker {
                    label,
                    client,
                    stats: Arc::default(),
                    tailer: None,
                    last_sample: None,
                })
                .collect(),
            health: FleetHealth::new(count),
            interval: Duration::from_secs(1),
        }
    }

    /// Sets the frame interval (clamped to ≥ 1 ms).
    #[must_use]
    pub fn with_interval(mut self, interval: Duration) -> FleetMonitor {
        self.interval = interval.max(Duration::from_millis(1));
        self
    }

    /// Renders frames to `writer` forever (`frames: None`) or for exactly
    /// `frames` frames — the bounded form is what CI smoke tests use.
    ///
    /// # Errors
    ///
    /// The first write error of `writer`; probe and stream errors are
    /// rendered, not returned.
    pub fn run(
        &mut self,
        frames: Option<u64>,
        writer: &mut dyn Write,
    ) -> io::Result<()> {
        let mut frame = 0u64;
        loop {
            self.render_frame(writer)?;
            writer.flush()?;
            frame += 1;
            if frames.is_some_and(|total| frame >= total) {
                // Leave the tailers to their streams: the monitor only
                // samples, and abandoned subscriptions end with the
                // campaign (or the process).
                return Ok(());
            }
            thread::sleep(self.interval);
        }
    }

    /// Renders one status line per worker.
    fn render_frame(&mut self, writer: &mut dyn Write) -> io::Result<()> {
        for index in 0..self.workers.len() {
            let line = self.worker_line(index);
            writeln!(writer, "[fleet] {line}")?;
        }
        Ok(())
    }

    /// One worker's status line (without the `[fleet] ` prefix).
    fn worker_line(&mut self, index: usize) -> String {
        let snapshot = self.workers[index].client.health_snapshot();
        match snapshot {
            Ok(health) => {
                self.health.record_success(index);
                self.retail(index);
                let worker = &mut self.workers[index];
                let state = state_name(WorkerState::Healthy);
                let queue = match health.capacity {
                    Some(capacity) => format!("queue {}/{capacity}", health.queued),
                    None => format!("queue {}/\u{221e}", health.queued),
                };
                let stats = worker.stats.lock().expect("lane stats lock").clone();
                let now = Instant::now();
                let rate = match worker.last_sample {
                    Some((tests, at)) if now > at => {
                        let elapsed = now.duration_since(at).as_secs_f64();
                        (stats.tests.saturating_sub(tests)) as f64 / elapsed
                    }
                    _ => 0.0,
                };
                worker.last_sample = Some((stats.tests, now));
                let campaign = match &stats.campaign {
                    Some((id, label)) if !stats.done => format!("campaign #{id} {label}"),
                    _ => "idle".to_owned(),
                };
                let percent = if stats.space_len == 0 {
                    0.0
                } else {
                    stats.covered as f64 * 100.0 / stats.space_len as f64
                };
                format!(
                    "{} | {state} | {queue} | running {} | {campaign} | {rate:.0} tests/sec \
                     | coverage {percent:.1}% ({}/{}) | detections {}",
                    worker.label,
                    health.running,
                    stats.covered,
                    stats.space_len,
                    stats.detections
                )
            }
            Err(error) => {
                self.health.record_failure(index);
                let state = state_name(self.health.state(index));
                format!("{} | {state} | unreachable: {error}", self.workers[index].label)
            }
        }
    }

    /// Points worker `index`'s tailer at its oldest running campaign, when
    /// it has none (or its previous stream ended).
    fn retail(&mut self, index: usize) {
        let running = {
            let worker = &self.workers[index];
            let done = worker.stats.lock().expect("lane stats lock").done;
            let tailing = worker
                .tailer
                .as_ref()
                .is_some_and(|handle| !handle.is_finished())
                && !done;
            if tailing {
                return;
            }
            worker.client.list().ok().and_then(|campaigns| {
                campaigns
                    .into_iter()
                    .find(|campaign| campaign.status == "running")
            })
        };
        if let Some(campaign) = running {
            self.workers[index].ensure_tailer(campaign.id, campaign.label);
        }
    }
}

impl std::fmt::Debug for FleetMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetMonitor")
            .field("workers", &self.workers.len())
            .field("interval", &self.interval)
            .finish()
    }
}

/// The dashboard spelling of a worker's lifecycle state.
fn state_name(state: WorkerState) -> &'static str {
    match state {
        WorkerState::Healthy => "healthy",
        WorkerState::Quarantined => "quarantined",
        WorkerState::Retired => "retired",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CampaignServer;
    use mabfuzz::CampaignSpec;

    fn tiny_spec_json() -> String {
        CampaignSpec::builder()
            .max_tests(40)
            .rng_seed(9)
            .processor(proc_sim::ProcessorKind::Rocket, mabfuzz::BugSpec::None)
            .build()
            .expect("tiny spec")
            .to_json()
    }

    #[test]
    fn lane_fold_tracks_tests_coverage_and_detections_across_chunks() {
        let stats = Arc::new(Mutex::new(LaneStats::default()));
        let mut fold = LaneFold { stats: Arc::clone(&stats), line: Vec::new() };
        let stream = "{\"event\":\"test_folded\",\"test_number\":3,\"test_id\":3,\"arm\":0,\
                      \"local_new\":1,\"global_new\":1,\"covered\":12,\"reward\":1.0,\
                      \"detected\":true}\n\
                      {\"event\":\"coverage_milestone\",\"decile\":1,\"covered\":20,\
                      \"space_len\":200,\"test_number\":4}\n\
                      {\"event\":\"campaign_finished\",\"tests_executed\":5,\
                      \"final_coverage\":22,\"total_resets\":0}\n";
        // Byte-at-a-time delivery exercises the partial-line buffering.
        for byte in stream.as_bytes() {
            fold.write_all(std::slice::from_ref(byte)).expect("lane folds never fail");
        }
        let stats = stats.lock().unwrap();
        assert_eq!(stats.tests, 5);
        assert_eq!(stats.covered, 22);
        assert_eq!(stats.space_len, 200);
        assert_eq!(stats.detections, 1);
    }

    #[test]
    fn lane_fold_discards_oversized_partial_lines_instead_of_buffering_them() {
        let stats = Arc::new(Mutex::new(LaneStats::default()));
        let mut fold = LaneFold { stats, line: Vec::new() };
        let chunk = vec![b'x'; 64 * 1024];
        for _ in 0..64 {
            fold.write_all(&chunk).expect("lane folds never fail");
            assert!(fold.line.len() <= MAX_EVENT_LINE_BYTES, "bounded buffering");
        }
    }

    #[test]
    fn dashboard_renders_live_workers_and_marks_dead_ones() {
        let server = CampaignServer::bind("127.0.0.1:0", 1).expect("bind");
        let alive = Client::new(server.local_addr());
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.serve());
        alive.submit(&tiny_spec_json()).expect("submit");

        // A port nothing listens on: the probe fails, the worker is
        // quarantined on the first frame.
        let dead_addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
            probe.local_addr().expect("probe addr").to_string()
        };
        let dead = Client::connect(&dead_addr).expect("resolve");

        let mut monitor = FleetMonitor::new(vec![
            (addr.clone(), alive.clone()),
            (dead_addr.clone(), dead),
        ])
        .with_interval(Duration::from_millis(30));
        let mut output = Vec::new();
        monitor.run(Some(4), &mut output).expect("render four frames");
        let text = String::from_utf8(output).expect("UTF-8 frames");

        assert_eq!(text.lines().count(), 8, "two workers, four frames: {text}");
        assert!(text.lines().all(|line| line.starts_with("[fleet] ")), "{text}");
        let alive_line = text
            .lines()
            .rev()
            .find(|line| line.contains(&addr))
            .expect("the live worker rendered");
        assert!(alive_line.contains("healthy"), "{alive_line}");
        assert!(alive_line.contains("queue "), "{alive_line}");
        assert!(alive_line.contains("tests/sec"), "{alive_line}");
        assert!(alive_line.contains("coverage "), "{alive_line}");
        let dead_line = text
            .lines()
            .find(|line| line.contains(&dead_addr))
            .expect("the dead worker rendered");
        assert!(
            dead_line.contains("quarantined") && dead_line.contains("unreachable"),
            "{dead_line}"
        );

        alive.shutdown().expect("shutdown");
        handle.join().expect("thread").expect("clean shutdown");
    }
}
