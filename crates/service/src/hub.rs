//! The service's shared campaign registry and job queue.
//!
//! A [`Hub`] owns every campaign the server has accepted: its spec, its
//! lifecycle [`Status`], its [`EventBroadcast`] (the replay-from-start event
//! stream connections subscribe to), its [`CancelToken`] and — once terminal
//! — its final report document. Connection handlers and the worker pool
//! share one `Arc<Hub>`; all state lives behind a single mutex with a
//! condvar for queue hand-off, so the hot path (the campaign itself) never
//! touches hub locks — workers only lock to pop a job and to publish
//! terminal state.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use mabfuzz::{CampaignSpec, CancelToken, EventBroadcast};

use crate::http::json_string;

/// Lifecycle of one submitted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Ran its full budget (or stopped on a detection); report available.
    Finished,
    /// Stopped early at a fold boundary by `POST /campaigns/{id}/cancel`;
    /// a report over the folded prefix is available.
    Cancelled,
    /// Could not be executed (the error text is the report's `error` field).
    Failed,
}

impl Status {
    /// The wire spelling of the status.
    pub fn name(self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Finished => "finished",
            Status::Cancelled => "cancelled",
            Status::Failed => "failed",
        }
    }

    /// Whether the campaign will make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(self, Status::Finished | Status::Cancelled | Status::Failed)
    }
}

/// Everything the hub tracks for one campaign.
struct CampaignEntry {
    spec: CampaignSpec,
    label: String,
    status: Status,
    events: EventBroadcast,
    cancel: CancelToken,
    /// The final report document (`report::campaign_json`) once terminal,
    /// or the failure message for `Failed` entries.
    report: Option<String>,
    /// When a TTL is configured: the instant after which this (terminal)
    /// entry may be evicted by [`Hub::sweep`]. `None` while non-terminal or
    /// when eviction is disabled.
    expires_at: Option<Instant>,
}

#[derive(Default)]
struct HubState {
    next_id: u64,
    campaigns: BTreeMap<u64, CampaignEntry>,
    queue: VecDeque<u64>,
    shutting_down: bool,
    /// Retention of *terminal* campaigns. `None` (the default) retains
    /// everything until an explicit `DELETE` — the PR 5 behaviour.
    ttl: Option<Duration>,
    /// Upper bound on *queued* (not yet running) jobs. `None` (the default)
    /// keeps the queue unbounded; over-capacity submissions are refused
    /// with [`SubmitOutcome::QueueFull`], which the server maps to 429.
    max_queue: Option<usize>,
}

impl HubState {
    /// Evicts every terminal campaign whose TTL has lapsed. Called under
    /// the hub lock from every queue operation and status transition (plus
    /// the per-request [`Hub::sweep`]), so a keep-alive fleet that holds
    /// its connections open for hours still evicts on its own traffic.
    fn sweep_expired(&mut self) -> usize {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .campaigns
            .iter()
            .filter(|(_, entry)| entry.expires_at.is_some_and(|at| at <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            self.campaigns.remove(id);
        }
        expired.len()
    }
}

/// The result of a submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubmitOutcome {
    /// Accepted and queued under this campaign id.
    Queued(u64),
    /// Refused: the hub is shutting down (terminal; do not retry here).
    ShuttingDown,
    /// Refused: the job queue is at its configured capacity (transient;
    /// retry after backoff — the server surfaces this as 429).
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
}

impl SubmitOutcome {
    /// The campaign id for accepted submissions.
    #[cfg(test)]
    pub fn id(self) -> Option<u64> {
        match self {
            SubmitOutcome::Queued(id) => Some(id),
            _ => None,
        }
    }
}

/// A point-in-time census of the hub, for `GET /healthz`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueStats {
    /// Campaigns currently tracked (any status).
    pub campaigns: usize,
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs a worker is executing right now.
    pub running: usize,
    /// The configured queue bound, if any.
    pub capacity: Option<usize>,
}

/// Shared state between the accept loop, connection handlers and workers.
#[derive(Default)]
pub(crate) struct Hub {
    state: Mutex<HubState>,
    jobs: Condvar,
}

/// A snapshot of one campaign's externally visible state.
pub(crate) struct CampaignView {
    pub id: u64,
    pub status: Status,
    pub label: String,
    pub report: Option<String>,
}

impl CampaignView {
    /// Renders the status document (`GET /campaigns/{id}` and the entries of
    /// `GET /campaigns`): id, status, label, and the inline report (the full
    /// campaign document for terminal entries, `null` otherwise; byte-exact
    /// retrieval goes through `GET /campaigns/{id}/report`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"status\":{},\"label\":{},\"report\":{}}}",
            self.id,
            json_string(self.status.name()),
            json_string(&self.label),
            self.report.as_deref().unwrap_or("null")
        )
    }
}

impl Hub {
    pub fn new() -> Hub {
        Hub::default()
    }

    /// Configures auto-eviction: terminal campaigns are dropped by
    /// [`sweep`](Hub::sweep) once they have been terminal for `ttl`.
    /// `None` disables eviction (the default).
    pub fn set_ttl(&self, ttl: Option<Duration>) {
        self.state.lock().expect("hub lock").ttl = ttl;
    }

    /// Bounds the job queue to `capacity` waiting jobs. `None` (the
    /// default) keeps the queue unbounded.
    pub fn set_max_queue(&self, capacity: Option<usize>) {
        self.state.lock().expect("hub lock").max_queue = capacity;
    }

    /// Evicts every terminal campaign whose TTL has lapsed, returning how
    /// many were dropped. Called per request *and* on every queue operation
    /// and status transition — with keep-alive connections a fleet can hold
    /// its sockets open indefinitely, so eviction cannot depend on new
    /// connections arriving. An idle daemon still holds expired entries
    /// until its next request or transition, which is harmless because
    /// memory pressure comes from traffic.
    pub fn sweep(&self) -> usize {
        self.state.lock().expect("hub lock").sweep_expired()
    }

    /// Registers a validated spec and queues it for execution.
    pub fn submit(&self, spec: CampaignSpec) -> SubmitOutcome {
        let mut state = self.state.lock().expect("hub lock");
        state.sweep_expired();
        if state.shutting_down {
            return SubmitOutcome::ShuttingDown;
        }
        if let Some(capacity) = state.max_queue {
            if state.queue.len() >= capacity {
                return SubmitOutcome::QueueFull { capacity };
            }
        }
        state.next_id += 1;
        let id = state.next_id;
        let label = spec.label();
        state.campaigns.insert(
            id,
            CampaignEntry {
                spec,
                label,
                status: Status::Queued,
                events: EventBroadcast::new(),
                cancel: CancelToken::new(),
                report: None,
                expires_at: None,
            },
        );
        state.queue.push_back(id);
        self.jobs.notify_one();
        SubmitOutcome::Queued(id)
    }

    /// Blocks until a job is available (returning its id, spec, broadcast
    /// and token, and marking it running) or the hub is shutting down with
    /// an empty queue (returning `None`). Already-queued jobs are drained
    /// before shutdown completes.
    pub fn next_job(&self) -> Option<(u64, CampaignSpec, EventBroadcast, CancelToken)> {
        let mut state = self.state.lock().expect("hub lock");
        loop {
            state.sweep_expired();
            if let Some(id) = state.queue.pop_front() {
                let entry = state.campaigns.get_mut(&id).expect("queued entries exist");
                entry.status = Status::Running;
                return Some((
                    id,
                    entry.spec.clone(),
                    entry.events.clone(),
                    entry.cancel.clone(),
                ));
            }
            if state.shutting_down {
                return None;
            }
            state = self.jobs.wait(state).expect("hub lock");
        }
    }

    /// Publishes a terminal state: the report document plus whether the run
    /// was cancelled, and closes the event stream.
    pub fn complete(&self, id: u64, report: String, cancelled: bool) {
        let mut state = self.state.lock().expect("hub lock");
        state.sweep_expired();
        let expires_at = state.ttl.map(|ttl| Instant::now() + ttl);
        let entry = state.campaigns.get_mut(&id).expect("completed entries exist");
        entry.status = if cancelled { Status::Cancelled } else { Status::Finished };
        entry.report = Some(report);
        entry.expires_at = expires_at;
        entry.events.close();
    }

    /// Publishes an execution failure and closes the event stream.
    pub fn fail(&self, id: u64, error: String) {
        let mut state = self.state.lock().expect("hub lock");
        state.sweep_expired();
        let expires_at = state.ttl.map(|ttl| Instant::now() + ttl);
        let entry = state.campaigns.get_mut(&id).expect("failed entries exist");
        entry.status = Status::Failed;
        entry.report = Some(format!("{{\"error\":{}}}", json_string(&error)));
        entry.expires_at = expires_at;
        entry.events.close();
    }

    /// Requests cancellation of a campaign. Returns the status observed at
    /// request time (`None` for unknown ids); terminal campaigns are left
    /// untouched.
    pub fn cancel(&self, id: u64) -> Option<Status> {
        let state = self.state.lock().expect("hub lock");
        let entry = state.campaigns.get(&id)?;
        if !entry.status.is_terminal() {
            entry.cancel.cancel();
        }
        Some(entry.status)
    }

    /// A snapshot of one campaign.
    pub fn view(&self, id: u64) -> Option<CampaignView> {
        let state = self.state.lock().expect("hub lock");
        let entry = state.campaigns.get(&id)?;
        Some(CampaignView {
            id,
            status: entry.status,
            label: entry.label.clone(),
            report: entry.report.clone(),
        })
    }

    /// The raw report document of a terminal campaign (`None` while the
    /// campaign is still queued or running, or for unknown ids — callers
    /// disambiguate through [`view`](Hub::view)).
    pub fn report(&self, id: u64) -> Option<String> {
        let state = self.state.lock().expect("hub lock");
        state.campaigns.get(&id).and_then(|entry| entry.report.clone())
    }

    /// The event broadcast of a campaign (replay-from-start subscriptions).
    pub fn events(&self, id: u64) -> Option<EventBroadcast> {
        let state = self.state.lock().expect("hub lock");
        state.campaigns.get(&id).map(|entry| entry.events.clone())
    }

    /// Evicts a *terminal* campaign — its event history, report and spec are
    /// dropped (the hub otherwise retains every campaign for replay, so
    /// long-running deployments evict what they have consumed). Returns the
    /// blocking status for non-terminal entries, `None` for unknown ids.
    ///
    /// # Errors
    ///
    /// `Some(Err(status))` when the campaign is still queued or running.
    #[allow(clippy::type_complexity)]
    pub fn remove(&self, id: u64) -> Option<Result<(), Status>> {
        let mut state = self.state.lock().expect("hub lock");
        let entry = state.campaigns.get(&id)?;
        if !entry.status.is_terminal() {
            return Some(Err(entry.status));
        }
        state.campaigns.remove(&id);
        Some(Ok(()))
    }

    /// Snapshots every campaign in submission order.
    pub fn list(&self) -> Vec<CampaignView> {
        let state = self.state.lock().expect("hub lock");
        state
            .campaigns
            .iter()
            .map(|(id, entry)| CampaignView {
                id: *id,
                status: entry.status,
                label: entry.label.clone(),
                // Keep the listing light: reports are fetched per campaign.
                report: None,
            })
            .collect()
    }

    /// Number of campaigns ever accepted.
    pub fn campaign_count(&self) -> usize {
        self.state.lock().expect("hub lock").campaigns.len()
    }

    /// A census of the hub for `GET /healthz`: tracked campaigns, queue
    /// depth, running jobs and the configured queue bound.
    pub fn queue_stats(&self) -> QueueStats {
        let state = self.state.lock().expect("hub lock");
        QueueStats {
            campaigns: state.campaigns.len(),
            queued: state.queue.len(),
            running: state
                .campaigns
                .values()
                .filter(|entry| entry.status == Status::Running)
                .count(),
            capacity: state.max_queue,
        }
    }

    /// Starts shutdown: refuses new submissions, wakes every idle worker so
    /// they can drain the queue and exit.
    pub fn begin_shutdown(&self) {
        let mut state = self.state.lock().expect("hub lock");
        state.shutting_down = true;
        self.jobs.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state.lock().expect("hub lock").shutting_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec::builder().max_tests(5).build().unwrap()
    }

    #[test]
    fn submissions_queue_in_order_and_views_track_status() {
        let hub = Hub::new();
        let first = hub.submit(spec()).id().unwrap();
        let second = hub.submit(spec()).id().unwrap();
        assert_eq!((first, second), (1, 2), "ids are sequential");
        assert_eq!(hub.view(1).unwrap().status, Status::Queued);
        let (id, ..) = hub.next_job().unwrap();
        assert_eq!(id, 1, "FIFO queue");
        assert_eq!(hub.view(1).unwrap().status, Status::Running);
        hub.complete(1, "{\"r\":1}".to_owned(), false);
        let view = hub.view(1).unwrap();
        assert_eq!(view.status, Status::Finished);
        assert_eq!(view.report.as_deref(), Some("{\"r\":1}"));
        assert!(view.to_json().contains("\"status\":\"finished\""));
        assert!(hub.events(1).unwrap().is_closed(), "terminal streams are closed");
        assert!(hub.view(99).is_none());
    }

    #[test]
    fn cancellation_flags_the_token_and_spares_terminal_entries() {
        let hub = Hub::new();
        hub.submit(spec()).id().unwrap();
        let (id, _, _, token) = hub.next_job().unwrap();
        assert_eq!(hub.cancel(id), Some(Status::Running));
        assert!(token.is_cancelled());
        hub.complete(id, "{}".to_owned(), true);
        assert_eq!(hub.view(id).unwrap().status, Status::Cancelled);
        assert_eq!(hub.cancel(id), Some(Status::Cancelled), "terminal: no-op");
        assert_eq!(hub.cancel(404), None);
    }

    #[test]
    fn shutdown_refuses_new_work_and_drains_the_queue() {
        let hub = Hub::new();
        hub.submit(spec()).id().unwrap();
        hub.begin_shutdown();
        assert_eq!(hub.submit(spec()), SubmitOutcome::ShuttingDown, "no submissions after shutdown");
        assert!(hub.next_job().is_some(), "queued jobs drain first");
        assert!(hub.next_job().is_none(), "then workers are released");
    }

    #[test]
    fn a_full_queue_refuses_submissions_until_it_drains() {
        let hub = Hub::new();
        hub.set_max_queue(Some(2));
        hub.submit(spec()).id().unwrap();
        hub.submit(spec()).id().unwrap();
        assert_eq!(hub.submit(spec()), SubmitOutcome::QueueFull { capacity: 2 });
        // The bound counts *queued* jobs only: dequeuing one to run frees a
        // slot even though the hub still tracks the campaign.
        let (id, ..) = hub.next_job().unwrap();
        assert!(hub.submit(spec()).id().is_some(), "a drained slot accepts again");
        assert_eq!(hub.submit(spec()), SubmitOutcome::QueueFull { capacity: 2 });
        hub.complete(id, "{}".to_owned(), false);
        let stats = hub.queue_stats();
        assert_eq!((stats.queued, stats.capacity), (2, Some(2)));
        // Lifting the bound restores unbounded admission.
        hub.set_max_queue(None);
        assert!(hub.submit(spec()).id().is_some());
    }

    #[test]
    fn removal_evicts_terminal_entries_only() {
        let hub = Hub::new();
        hub.submit(spec()).id().unwrap();
        let (id, ..) = hub.next_job().unwrap();
        assert_eq!(hub.remove(id), Some(Err(Status::Running)), "running entries stay");
        hub.complete(id, "{}".to_owned(), false);
        assert_eq!(hub.remove(id), Some(Ok(())));
        assert!(hub.view(id).is_none(), "the entry and its stream are gone");
        assert_eq!(hub.remove(id), None, "a second delete is an unknown id");
    }

    #[test]
    fn ttl_sweep_evicts_lapsed_terminal_entries_only() {
        let hub = Hub::new();
        hub.set_ttl(Some(Duration::from_millis(0)));
        hub.submit(spec()).id().unwrap();
        hub.submit(spec()).id().unwrap();
        let (first, ..) = hub.next_job().unwrap();
        hub.complete(first, "{}".to_owned(), false);
        // The second campaign is still queued: not evictable regardless of
        // its age.
        assert_eq!(hub.sweep(), 1, "one lapsed terminal entry");
        assert!(hub.view(first).is_none());
        assert!(hub.view(2).is_some(), "queued entries survive the sweep");
        assert_eq!(hub.sweep(), 0, "sweeping is idempotent");
    }

    #[test]
    fn without_ttl_terminal_entries_are_retained_and_delete_still_works() {
        let hub = Hub::new();
        hub.submit(spec()).id().unwrap();
        let (id, ..) = hub.next_job().unwrap();
        hub.complete(id, "{}".to_owned(), false);
        assert_eq!(hub.sweep(), 0, "no TTL, no eviction");
        assert!(hub.view(id).is_some());
        assert_eq!(hub.remove(id), Some(Ok(())), "explicit DELETE keeps working");
    }

    #[test]
    fn ttl_applies_from_terminal_transition_not_submission() {
        let hub = Hub::new();
        hub.set_ttl(Some(Duration::from_secs(3600)));
        hub.submit(spec()).id().unwrap();
        let (id, ..) = hub.next_job().unwrap();
        hub.fail(id, "boom".to_owned());
        assert_eq!(hub.sweep(), 0, "a fresh terminal entry is within its TTL");
        assert!(hub.view(id).is_some());
    }

    #[test]
    fn failures_publish_an_error_report() {
        let hub = Hub::new();
        hub.submit(spec()).id().unwrap();
        let (id, ..) = hub.next_job().unwrap();
        hub.fail(id, "boom \"quoted\"".to_owned());
        let view = hub.view(id).unwrap();
        assert_eq!(view.status, Status::Failed);
        assert!(view.report.unwrap().contains("boom \\\"quoted\\\""));
    }
}
