//! The campaign daemon: TCP accept loop, request routing, worker pool.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mabfuzz::report::campaign_json;
use mabfuzz::{Campaign, CampaignSpec, EventLog, SpecError};

use crate::http::{
    finish_chunked, json_string, read_request, respond_error, respond_json, start_chunked,
    write_chunk, Request,
};
use crate::hub::{Hub, SubmitOutcome};

/// The campaign service daemon (what `experiments serve` runs).
///
/// Bind with [`bind`](CampaignServer::bind), read the ephemeral port back
/// with [`local_addr`](CampaignServer::local_addr), then hand the thread to
/// [`serve`](CampaignServer::serve), which blocks until a client posts
/// `/shutdown`. See the crate docs for the wire protocol.
///
/// # Example
///
/// ```
/// use mabfuzz_service::{CampaignServer, Client};
///
/// let server = CampaignServer::bind("127.0.0.1:0", 1).unwrap();
/// let addr = server.local_addr();
/// let handle = std::thread::spawn(move || server.serve());
///
/// let client = Client::new(addr);
/// let spec = "{\"policy\":\"ucb\",\"rng_seed\":1,\
///             \"processor\":{\"core\":\"rocket\",\"bugs\":\"none\"},\
///             \"campaign\":{\"max_tests\":10}}";
/// let id = client.submit(spec).unwrap();
/// let events = client.events(id).unwrap();
/// assert_eq!(events.lines().filter(|l| l.contains("\"test_folded\"")).count(), 10);
/// assert!(events.lines().last().unwrap().starts_with("{\"event\":\"campaign_finished\""));
/// client.shutdown().unwrap();
/// handle.join().unwrap().unwrap();
/// ```
pub struct CampaignServer {
    listener: TcpListener,
    hub: Arc<Hub>,
    workers: usize,
    config: Arc<ServerConfig>,
}

/// Hardening knobs shared by every connection thread.
struct ServerConfig {
    /// Per-connection socket read/write deadline. A peer that connects and
    /// then sends bytes slower than this (a "slowloris") gets its socket
    /// reads timed out instead of pinning a connection thread forever.
    io_timeout: Option<Duration>,
    /// Shared-secret bearer token; when set, every route except
    /// `GET /healthz` requires `Authorization: Bearer <token>`.
    auth_token: Option<String>,
}

/// Read-error kinds that mean "the peer went away or went quiet" rather
/// than "the peer sent garbage": a keep-alive connection ending this way is
/// closed silently (there may be nobody left to answer, and an idle timeout
/// between requests is the *expected* end of a pooled connection's life).
fn is_disconnect(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// Default per-connection socket deadline (see
/// [`with_io_timeout`](CampaignServer::with_io_timeout)).
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

impl CampaignServer {
    /// Binds the listener (use port 0 for an ephemeral port) and sizes the
    /// worker pool to `workers` campaign-executing threads (clamped to at
    /// least 1).
    ///
    /// # Errors
    ///
    /// Any error of [`TcpListener::bind`].
    pub fn bind(addr: &str, workers: usize) -> io::Result<CampaignServer> {
        Ok(CampaignServer {
            listener: TcpListener::bind(addr)?,
            hub: Arc::new(Hub::new()),
            workers: workers.max(1),
            config: Arc::new(ServerConfig {
                io_timeout: Some(DEFAULT_IO_TIMEOUT),
                auth_token: None,
            }),
        })
    }

    /// Sets the per-connection socket read/write deadline (default
    /// [`DEFAULT_IO_TIMEOUT`]). `None` disables the deadline entirely —
    /// only do that in trusted single-machine setups, since it re-opens
    /// the slowloris window.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> CampaignServer {
        self.config_mut().io_timeout = timeout;
        self
    }

    /// Requires `Authorization: Bearer <token>` on every route except
    /// `GET /healthz` (kept open for load-balancer probes). Tokens are
    /// compared in constant time; mismatches get `401 Unauthorized`.
    #[must_use]
    pub fn with_auth_token(mut self, token: Option<String>) -> CampaignServer {
        self.config_mut().auth_token = token;
        self
    }

    /// Auto-evicts terminal (completed / failed / cancelled) campaigns
    /// `ttl` after they reach their terminal state, reclaiming hub memory
    /// in long-lived daemons. Explicit `DELETE` keeps working either way;
    /// `None` (the default) retains terminal campaigns until deleted.
    #[must_use]
    pub fn with_ttl(self, ttl: Option<Duration>) -> CampaignServer {
        self.hub.set_ttl(ttl);
        self
    }

    /// Bounds the job queue to `capacity` *waiting* jobs (`serve
    /// --max-queue N`). Submissions past the bound are refused with `429
    /// Too Many Requests` and a retryable error body; clients back off and
    /// retry. `None` (the default) keeps the queue unbounded.
    #[must_use]
    pub fn with_max_queue(self, capacity: Option<usize>) -> CampaignServer {
        self.hub.set_max_queue(capacity);
        self
    }

    fn config_mut(&mut self) -> &mut ServerConfig {
        Arc::get_mut(&mut self.config)
            .expect("builder methods run before serve() shares the config")
    }

    /// The address the listener actually bound (the source of truth when
    /// binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("a bound listener has an address")
    }

    /// Runs the daemon: spawns the worker pool, accepts connections (each
    /// carrying any number of sequential keep-alive requests) until a
    /// client posts `/shutdown`, then drains the already-queued campaigns
    /// and joins every worker before returning — a clean shutdown leaves no
    /// detached campaign running.
    ///
    /// # Errors
    ///
    /// A fatal accept-loop error. Per-connection I/O errors are contained
    /// to their connection thread.
    pub fn serve(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.workers)
            .map(|index| {
                let hub = Arc::clone(&self.hub);
                thread::Builder::new()
                    .name(format!("campaign-worker-{index}"))
                    .spawn(move || worker_loop(&hub))
                    .expect("spawn campaign worker")
            })
            .collect();

        let local_addr = self.local_addr();
        for stream in self.listener.incoming() {
            if self.hub.is_shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                // A failed accept of one connection is not fatal to the
                // daemon.
                Err(_) => continue,
            };
            let hub = Arc::clone(&self.hub);
            let config = Arc::clone(&self.config);
            let _ = thread::Builder::new().name("campaign-conn".to_owned()).spawn(move || {
                let shutdown = handle_connection(&hub, &config, stream);
                if shutdown {
                    hub.begin_shutdown();
                    // The accept loop is blocked in `accept`; a throwaway
                    // connection wakes it so it can observe the flag.
                    let _ = TcpStream::connect(local_addr);
                }
            });
        }

        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

impl std::fmt::Debug for CampaignServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignServer")
            .field("addr", &self.local_addr())
            .field("workers", &self.workers)
            .field("campaigns", &self.hub.campaign_count())
            .finish()
    }
}

/// One worker: pop queued campaigns and execute them until shutdown drains
/// the queue.
fn worker_loop(hub: &Hub) {
    while let Some((id, spec, events, cancel)) = hub.next_job() {
        let log = EventLog::new(events.clone());
        match Campaign::from_spec(&spec) {
            Ok(campaign) => {
                let outcome = campaign
                    .with_observer(Box::new(log))
                    .with_cancellation(cancel.clone())
                    .execute();
                hub.complete(id, campaign_json(&spec, &outcome), cancel.was_interrupted());
            }
            // Submission validates specs, so this arm is a backstop (e.g. a
            // custom policy unregistered between submit and execution).
            Err(error) => hub.fail(id, error.to_string()),
        }
    }
}

/// Handles one keep-alive connection: loops reading requests until the peer
/// closes, asks for `Connection: close`, breaks the protocol, or goes idle
/// past the I/O deadline. Returns whether any request asked the daemon to
/// shut down.
fn handle_connection(hub: &Hub, config: &ServerConfig, stream: TcpStream) -> bool {
    // Socket deadlines bound both halves of every exchange: a slowloris
    // peer times out reading the request, a stalled consumer times out on
    // the event-stream writes, and the same read deadline doubles as the
    // keep-alive idle timeout between requests.
    let _ = stream.set_read_timeout(config.io_timeout);
    let _ = stream.set_write_timeout(config.io_timeout);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return false,
    });
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            // Clean close between requests (a pooled client moving on, or
            // the shutdown self-wake): nothing to answer.
            Ok(None) => return false,
            Err(error) => {
                // Idle timeout / peer disappearance: close silently. Actual
                // protocol violations get a loud 400, then the connection
                // closes — resynchronising a stream after a framing error
                // is exactly the request-smuggling trap.
                if !is_disconnect(error.kind()) {
                    let _ = respond_error(&mut writer, 400, &error.to_string(), true);
                }
                return false;
            }
        };
        // Opportunistic TTL sweep per *request*, not per connection — a
        // keep-alive fleet can hold its sockets open for hours, so eviction
        // must ride the traffic itself. The hub also sweeps on every queue
        // operation and status transition.
        hub.sweep();
        let close = request.close;
        if !authorized(config, &request) {
            if respond_error(&mut writer, 401, "missing or invalid bearer token", close).is_err()
                || close
            {
                return false;
            }
            continue;
        }
        let shutdown = request.method == "POST" && request.path == "/shutdown";
        // A shutdown response is the last thing this daemon says on the
        // connection, so it announces the close.
        if route(hub, &request, &mut writer, close || shutdown).is_err() {
            // The peer vanished mid-response; nothing useful left to do.
            return shutdown;
        }
        if shutdown || close {
            return shutdown;
        }
    }
}

/// Whether `request` may proceed under the server's auth policy.
/// `GET /healthz` stays open so fleet probes work without credentials.
fn authorized(config: &ServerConfig, request: &Request) -> bool {
    let Some(token) = config.auth_token.as_deref() else {
        return true;
    };
    if request.method == "GET" && request.path == "/healthz" {
        return true;
    }
    let expected = format!("Bearer {token}");
    request
        .authorization
        .as_deref()
        .is_some_and(|presented| constant_time_eq(presented.as_bytes(), expected.as_bytes()))
}

/// Byte-for-byte comparison whose running time depends only on the inputs'
/// lengths, not on where they first differ — a timing probe cannot recover
/// the token one byte at a time.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (&x, &y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Routes one parsed request to its handler. `close` is announced in the
/// response's `Connection` header (the connection closes after this
/// exchange); otherwise the connection stays open for the next request.
fn route(hub: &Hub, request: &Request, writer: &mut TcpStream, close: bool) -> io::Result<()> {
    let path = request.path.as_str();
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["campaigns"]) => submit(hub, &request.body, writer, close),
        ("GET", ["campaigns"]) => {
            let entries: Vec<String> =
                hub.list().iter().map(|view| view.to_json()).collect();
            respond_json(
                writer,
                200,
                &format!("{{\"campaigns\":[{}]}}", entries.join(",")),
                close,
            )
        }
        ("GET", ["campaigns", id]) => match parse_id(id) {
            Some(id) => match hub.view(id) {
                Some(view) => respond_json(writer, 200, &view.to_json(), close),
                None => unknown_campaign(writer, id, close),
            },
            None => bad_id(writer, id, close),
        },
        ("GET", ["campaigns", id, "events"]) => match parse_id(id) {
            Some(id) => stream_events(hub, id, writer, close),
            None => bad_id(writer, id, close),
        },
        ("GET", ["campaigns", id, "report"]) => match parse_id(id) {
            Some(id) => match (hub.report(id), hub.view(id)) {
                (Some(report), _) => respond_json(writer, 200, &report, close),
                (None, Some(view)) => respond_error(
                    writer,
                    409,
                    &format!("campaign {id} is {}; no report yet", view.status.name()),
                    close,
                ),
                (None, None) => unknown_campaign(writer, id, close),
            },
            None => bad_id(writer, id, close),
        },
        ("POST", ["campaigns", id, "cancel"]) => match parse_id(id) {
            Some(id) => match hub.cancel(id) {
                Some(status) => respond_json(
                    writer,
                    200,
                    &format!(
                        "{{\"id\":{id},\"status\":{}}}",
                        json_string(status.name())
                    ),
                    close,
                ),
                None => unknown_campaign(writer, id, close),
            },
            None => bad_id(writer, id, close),
        },
        ("DELETE", ["campaigns", id]) => match parse_id(id) {
            Some(id) => match hub.remove(id) {
                Some(Ok(())) => respond_json(
                    writer,
                    200,
                    &format!("{{\"id\":{id},\"status\":\"deleted\"}}"),
                    close,
                ),
                Some(Err(status)) => respond_error(
                    writer,
                    409,
                    &format!(
                        "campaign {id} is {}; cancel it or wait before deleting",
                        status.name()
                    ),
                    close,
                ),
                None => unknown_campaign(writer, id, close),
            },
            None => bad_id(writer, id, close),
        },
        ("POST", ["shutdown"]) => {
            respond_json(writer, 200, "{\"status\":\"shutting down\"}", close)
        }
        ("GET", ["healthz"]) => {
            let stats = hub.queue_stats();
            let capacity = match stats.capacity {
                Some(capacity) => capacity.to_string(),
                None => "null".to_owned(),
            };
            respond_json(
                writer,
                200,
                &format!(
                    "{{\"status\":\"ok\",\"campaigns\":{},\"queued\":{},\"running\":{},\
                     \"capacity\":{capacity}}}",
                    stats.campaigns, stats.queued, stats.running
                ),
                close,
            )
        }
        ("GET" | "POST" | "DELETE", _) => {
            respond_error(writer, 404, &format!("no route for `{path}`"), close)
        }
        (method, _) => {
            respond_error(writer, 405, &format!("method `{method}` not supported"), close)
        }
    }
}

/// `POST /campaigns`: parse + validate the spec body strictly, queue it.
fn submit(hub: &Hub, body: &[u8], writer: &mut TcpStream, close: bool) -> io::Result<()> {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return respond_error(writer, 400, "request body is not UTF-8", close),
    };
    // The strict spec codec is the single gatekeeper: unknown fields,
    // unknown policies and invalid parameters all fail here with the same
    // `SpecError` text the CLI prints.
    let spec = match CampaignSpec::from_json(text) {
        Ok(spec) => spec,
        Err(error) => return respond_error(writer, 400, &error.to_string(), close),
    };
    if spec.processor.is_none() {
        return respond_error(writer, 400, &SpecError::MissingProcessor.to_string(), close);
    }
    match hub.submit(spec) {
        SubmitOutcome::Queued(id) => respond_json(
            writer,
            201,
            &format!("{{\"id\":{id},\"status\":\"queued\"}}"),
            close,
        ),
        SubmitOutcome::ShuttingDown => {
            respond_error(writer, 409, "the server is shutting down", close)
        }
        // 429 is the transient refusal: the queue is at its configured
        // bound. Clients back off and retry the identical submission.
        SubmitOutcome::QueueFull { capacity } => respond_error(
            writer,
            429,
            &format!("job queue is at its capacity of {capacity}; retry after backoff"),
            close,
        ),
    }
}

/// `GET /campaigns/{id}/events`: chunked NDJSON, replayed from the start of
/// the stream and followed live until the campaign's broadcast closes. The
/// payload bytes are exactly the campaign's `EventLog` stream; chunked
/// framing is self-terminating, so the connection survives the stream.
fn stream_events(hub: &Hub, id: u64, writer: &mut TcpStream, close: bool) -> io::Result<()> {
    let Some(events) = hub.events(id) else {
        return unknown_campaign(writer, id, close);
    };
    start_chunked(writer, close)?;
    let mut offset = 0usize;
    while let Some(bytes) = events.wait_from(offset) {
        offset += bytes.len();
        // A late subscriber's first batch can be the whole stream so far;
        // split it so no single chunk exceeds what clients are willing to
        // buffer (see `MAX_CHUNK_BYTES` in the wire layer).
        for piece in bytes.chunks(64 * 1024) {
            write_chunk(writer, piece)?;
        }
    }
    finish_chunked(writer)
}

fn parse_id(text: &str) -> Option<u64> {
    text.parse().ok()
}

fn unknown_campaign(writer: &mut TcpStream, id: u64, close: bool) -> io::Result<()> {
    respond_error(writer, 404, &format!("unknown campaign id {id}"), close)
}

fn bad_id(writer: &mut TcpStream, id: &str, close: bool) -> io::Result<()> {
    respond_error(writer, 400, &format!("malformed campaign id `{id}`"), close)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str, authorization: Option<&str>) -> Request {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            body: Vec::new(),
            authorization: authorization.map(str::to_owned),
            close: false,
        }
    }

    #[test]
    fn constant_time_eq_matches_slice_equality() {
        assert!(constant_time_eq(b"Bearer s3cret", b"Bearer s3cret"));
        assert!(!constant_time_eq(b"Bearer s3cret", b"Bearer s3creT"));
        assert!(!constant_time_eq(b"Bearer s3cret", b"Bearer s3cre"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn auth_policy_gates_everything_except_healthz() {
        let open = ServerConfig { io_timeout: None, auth_token: None };
        assert!(authorized(&open, &request("POST", "/campaigns", None)));

        let locked =
            ServerConfig { io_timeout: None, auth_token: Some("s3cret".to_owned()) };
        assert!(!authorized(&locked, &request("POST", "/campaigns", None)));
        assert!(!authorized(
            &locked,
            &request("POST", "/campaigns", Some("Bearer wrong"))
        ));
        assert!(authorized(
            &locked,
            &request("POST", "/campaigns", Some("Bearer s3cret"))
        ));
        assert!(
            authorized(&locked, &request("GET", "/healthz", None)),
            "healthz stays open for unauthenticated fleet probes"
        );
        assert!(
            !authorized(&locked, &request("POST", "/healthz", None)),
            "only the GET probe form is exempt"
        );
    }
}
