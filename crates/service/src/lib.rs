//! The MABFuzz campaign service: remote campaign control over HTTP.
//!
//! This crate turns the workspace's declarative campaign surface into a
//! multi-tenant daemon: clients submit [`CampaignSpec`] documents over TCP,
//! a bounded worker pool executes them through
//! `Campaign::from_spec(..).execute()`, and every campaign's live per-test
//! [`CampaignObserver`] protocol is streamed back as NDJSON — **byte
//! identical** to the `EventLog` JSONL the CLI writes for the same spec, so
//! the golden streams under `tests/golden/` pin the wire format too. It is
//! what `experiments serve --addr 127.0.0.1:PORT --workers N` runs, and the
//! substrate the ROADMAP's "remote campaign control, live dashboards" item
//! called for.
//!
//! Everything is `std`-only (`std::net::TcpListener`, hand-rolled minimal
//! HTTP/1.1): the workspace is offline-shimmed, so no external dependencies.
//!
//! # Protocol reference
//!
//! All responses are JSON (errors: `{"error":"<message>"}`) and close the
//! connection (`Connection: close` — one request per connection).
//!
//! | Method & path | Body | Response |
//! |---|---|---|
//! | `POST /campaigns` | strict [`CampaignSpec`] JSON | `201` `{"id":N,"status":"queued"}` |
//! | `GET /campaigns` | — | `200` `{"campaigns":[{"id","status","label","report":null},…]}` |
//! | `GET /campaigns/{id}` | — | `200` `{"id","status","label","report"}` |
//! | `GET /campaigns/{id}/events` | — | `200` chunked NDJSON event stream |
//! | `GET /campaigns/{id}/report` | — | `200` final campaign report document |
//! | `POST /campaigns/{id}/cancel` | — | `200` `{"id":N,"status":"<at request time>"}` |
//! | `DELETE /campaigns/{id}` | — | `200` `{"id":N,"status":"deleted"}` |
//! | `POST /shutdown` | — | `200` `{"status":"shutting down"}` |
//! | `GET /healthz` | — | `200` `{"status":"ok","campaigns":N}` |
//!
//! Details per endpoint:
//!
//! * **`POST /campaigns`** — the body goes through the strict spec codec
//!   ([`CampaignSpec::from_json`]): unknown fields, unknown policies and
//!   invalid parameters are rejected with `400` and exactly the `SpecError`
//!   text the CLI prints (`unknown spec field `polcy``, `unknown policy …
//!   (valid policies: …)`, …). The spec must be self-contained (carry a
//!   `"processor"` section); otherwise `400` with the `MissingProcessor`
//!   text.
//! * **`GET /campaigns/{id}/events`** — replays the campaign's event stream
//!   from the start (late subscribers see the complete deterministic
//!   history) and then follows it live, as chunked
//!   `application/x-ndjson`, until the campaign reaches a terminal state.
//!   The de-chunked payload is byte-identical to the `EventLog` JSONL of
//!   the same spec: one event object per line, in deterministic fold order,
//!   shard-count invariant. Any number of subscribers may tail one campaign
//!   concurrently; each holds its own cursor into the shared broadcast
//!   ring.
//! * **`GET /campaigns/{id}/report`** — the final report document, rendered
//!   by the workspace's single campaign renderer
//!   (`mabfuzz::report::campaign_json`), byte-identical to
//!   `experiments run --spec <spec> --json` for the same spec. `409` while
//!   the campaign is queued/running; for `failed` campaigns the document is
//!   `{"error":"<why>"}`.
//! * **`POST /campaigns/{id}/cancel`** — flags the campaign's
//!   `CancelToken`; the run stops at its next deterministic fold boundary.
//!   Its status becomes `cancelled`, its report covers the folded prefix,
//!   and its event stream — which omits the final `campaign_finished`
//!   event — is a strict prefix of the stream the uncancelled campaign
//!   would have produced. Cancelling a terminal campaign is a no-op.
//! * **`DELETE /campaigns/{id}`** — evicts a *terminal* campaign, freeing
//!   its retained event history and report (the hub otherwise keeps every
//!   stream for replay-from-start; long-running deployments delete what
//!   they have consumed). `409` while the campaign is queued or running.
//! * **`POST /shutdown`** — the daemon stops accepting submissions, drains
//!   already-queued campaigns, joins its workers and exits `serve()`
//!   cleanly.
//!
//! Campaign lifecycle: `queued → running → finished | cancelled | failed`.
//!
//! # Architecture
//!
//! [`CampaignServer`] couples three pieces: an accept loop (thread per
//! connection — campaign execution dwarfs connection cost at this
//! protocol's request rates), a bounded worker pool (`--workers N`, sized by
//! the CLI from the same `Parallelism` budget as the experiment grid), and
//! a shared hub mapping campaign ids to their spec, status,
//! `EventBroadcast` (the fan-out sink behind `/events`) and `CancelToken`.
//! The campaign hot path never touches hub locks: the only writer into a
//! broadcast is the campaign's own `EventLog`, and subscribers read
//! append-only history under a condvar.
//!
//! [`Client`] is the matching blocking client — submit, status, events,
//! report, cancel, shutdown — used by the in-tree round-trip suites and
//! `examples/remote_campaign.rs`.
//!
//! [`CampaignSpec`]: mabfuzz::CampaignSpec
//! [`CampaignSpec::from_json`]: mabfuzz::CampaignSpec::from_json
//! [`CampaignObserver`]: mabfuzz::CampaignObserver

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod http;
mod hub;
mod server;

pub use client::{CampaignStatus, Client, ClientError};
pub use hub::Status;
pub use server::CampaignServer;
