//! The MABFuzz campaign service: remote campaign control over HTTP.
//!
//! This crate turns the workspace's declarative campaign surface into a
//! multi-tenant daemon: clients submit [`CampaignSpec`] documents over TCP,
//! a bounded worker pool executes them through
//! `Campaign::from_spec(..).execute()`, and every campaign's live per-test
//! [`CampaignObserver`] protocol is streamed back as NDJSON — **byte
//! identical** to the `EventLog` JSONL the CLI writes for the same spec, so
//! the golden streams under `tests/golden/` pin the wire format too. It is
//! what `experiments serve --addr 127.0.0.1:PORT --workers N` runs, and the
//! substrate the ROADMAP's "remote campaign control, live dashboards" item
//! called for.
//!
//! Everything is `std`-only (`std::net::TcpListener`, hand-rolled minimal
//! HTTP/1.1): the workspace is offline-shimmed, so no external dependencies.
//!
//! # Protocol reference
//!
//! All responses are JSON (errors: `{"error":"<message>"}`). Connections
//! are **keep-alive** (HTTP/1.1 default): the daemon serves any number of
//! sequential requests per connection, closing only on `Connection: close`,
//! on malformed framing, or when the idle socket trips the I/O deadline.
//! [`Client`] holds a small pool of persistent connections and reconnects
//! once, transparently, when a pooled socket turns out to have been closed
//! between requests — so a submit/stream/report/delete cycle normally rides
//! a single socket.
//!
//! | Method & path | Body | Response |
//! |---|---|---|
//! | `POST /campaigns` | strict [`CampaignSpec`] JSON | `201` `{"id":N,"status":"queued"}` |
//! | `GET /campaigns` | — | `200` `{"campaigns":[{"id","status","label","report":null},…]}` |
//! | `GET /campaigns/{id}` | — | `200` `{"id","status","label","report"}` |
//! | `GET /campaigns/{id}/events` | — | `200` chunked NDJSON event stream |
//! | `GET /campaigns/{id}/report` | — | `200` final campaign report document |
//! | `POST /campaigns/{id}/cancel` | — | `200` `{"id":N,"status":"<at request time>"}` |
//! | `DELETE /campaigns/{id}` | — | `200` `{"id":N,"status":"deleted"}` |
//! | `POST /shutdown` | — | `200` `{"status":"shutting down"}` |
//! | `GET /healthz` | — | `200` `{"status":"ok","campaigns":N,"queued":N,"running":N,"capacity":M\|null}` |
//!
//! When the daemon runs with an auth token (`experiments serve
//! --auth-token T`), every route except `GET /healthz` additionally
//! requires an `Authorization: Bearer T` header; see
//! [Hardening](#hardening) below.
//!
//! Details per endpoint:
//!
//! * **`POST /campaigns`** — the body goes through the strict spec codec
//!   ([`CampaignSpec::from_json`]): unknown fields, unknown policies and
//!   invalid parameters are rejected with `400` and exactly the `SpecError`
//!   text the CLI prints (`unknown spec field `polcy``, `unknown policy …
//!   (valid policies: …)`, …). The spec must be self-contained (carry a
//!   `"processor"` section); otherwise `400` with the `MissingProcessor`
//!   text. When the daemon runs with a queue bound (`serve --max-queue N`,
//!   [`CampaignServer::with_max_queue`]) and `N` campaigns are already
//!   queued (running campaigns do not count), the submission is refused
//!   with **`429 Too Many Requests`** and a retryable error body naming
//!   the capacity — the client should back off and resubmit; nothing about
//!   the rejected spec is retained.
//! * **`GET /campaigns/{id}/events`** — replays the campaign's event stream
//!   from the start (late subscribers see the complete deterministic
//!   history) and then follows it live, as chunked
//!   `application/x-ndjson`, until the campaign reaches a terminal state.
//!   The de-chunked payload is byte-identical to the `EventLog` JSONL of
//!   the same spec: one event object per line, in deterministic fold order,
//!   shard-count invariant. Any number of subscribers may tail one campaign
//!   concurrently; each holds its own cursor into the shared broadcast
//!   ring.
//! * **`GET /campaigns/{id}/report`** — the final report document, rendered
//!   by the workspace's single campaign renderer
//!   (`mabfuzz::report::campaign_json`), byte-identical to
//!   `experiments run --spec <spec> --json` for the same spec. `409` while
//!   the campaign is queued/running; for `failed` campaigns the document is
//!   `{"error":"<why>"}`.
//! * **`POST /campaigns/{id}/cancel`** — flags the campaign's
//!   `CancelToken`; the run stops at its next deterministic fold boundary.
//!   Its status becomes `cancelled`, its report covers the folded prefix,
//!   and its event stream — which omits the final `campaign_finished`
//!   event — is a strict prefix of the stream the uncancelled campaign
//!   would have produced. Cancelling a terminal campaign is a no-op.
//! * **`DELETE /campaigns/{id}`** — evicts a *terminal* campaign, freeing
//!   its retained event history and report (the hub otherwise keeps every
//!   stream for replay-from-start; long-running deployments delete what
//!   they have consumed). `409` while the campaign is queued or running.
//! * **`POST /shutdown`** — the daemon stops accepting submissions, drains
//!   already-queued campaigns, joins its workers and exits `serve()`
//!   cleanly.
//! * **`GET /healthz`** — a cheap liveness probe that never touches
//!   campaign execution: tracked campaigns, queue depth, running jobs and
//!   the configured queue bound (`"capacity"` is a number or `null` for
//!   unbounded; [`Client::health_snapshot`] parses the census as a
//!   [`HealthSnapshot`]). It is the heartbeat the dispatch coordinator
//!   uses to readmit quarantined workers and the signal behind the
//!   `experiments fleet` dashboard, and it is deliberately **exempt from
//!   auth** so load-balancer-style probes work without credentials. It
//!   reveals only liveness and counts — never spec contents, labels or
//!   reports, which all sit behind the token.
//!
//! Campaign lifecycle: `queued → running → finished | cancelled | failed`.
//!
//! # Hardening
//!
//! Four daemon-side protections, all off by default except the I/O
//! deadline, all configured through `CampaignServer` builder methods (and
//! the matching `experiments serve` flags):
//!
//! * **Socket deadlines** ([`CampaignServer::with_io_timeout`],
//!   `--io-timeout-ms`): every accepted connection gets read *and* write
//!   timeouts (default 30 s), so a slowloris peer — one that connects and
//!   then trickles or stops sending bytes — times out instead of pinning a
//!   connection thread forever, and a stalled event-stream consumer cannot
//!   wedge a writer. Under keep-alive the same deadline doubles as the
//!   idle-connection reaper: a pooled client connection that sits unused
//!   past it is closed by the daemon, and [`Client`] recovers by
//!   reconnecting once.
//! * **Queue backpressure** ([`CampaignServer::with_max_queue`],
//!   `--max-queue`): bounds the number of *queued* (not yet running)
//!   campaigns; over-capacity submissions get `429` with a retryable
//!   error body instead of growing the hub without bound. The dispatch
//!   coordinator treats the 429 as backoff-and-retry, not as a worker
//!   failure.
//! * **Shared-secret auth** ([`CampaignServer::with_auth_token`],
//!   `--auth-token`): when set, every route except `GET /healthz` requires
//!   `Authorization: Bearer <token>`. Tokens are compared in constant time
//!   (no early exit on the first differing byte), and mismatches get
//!   `401 Unauthorized`. [`Client::with_auth_token`] sends the header.
//! * **TTL eviction** ([`CampaignServer::with_ttl`], `--ttl` seconds):
//!   terminal campaigns (finished / cancelled / failed) are auto-evicted
//!   once their TTL lapses, counted **from the terminal transition**, not
//!   from submission — a long-running campaign is never reaped mid-flight.
//!   Sweeps happen opportunistically on incoming requests, status
//!   transitions and queue operations (no timer thread), so a keep-alive
//!   connection that never reconnects still observes evictions. Explicit
//!   `DELETE /campaigns/{id}` works exactly as before, with or without a
//!   TTL.
//!
//! # Dispatch and the failure model
//!
//! [`Coordinator`] (what `experiments dispatch --workers a:1,b:2 …` runs)
//! partitions a list of self-contained specs across several `serve`
//! daemons and merges the results into exactly what a local run would have
//! produced — campaigns are seeded and deterministic, which is what makes
//! retrying and reassigning them safe. The merge is **streaming**: each
//! worker's NDJSON feed is validated and folded line by line as chunks
//! arrive, carrying only an O(1) running-hash summary of the previously
//! folded prefix per job — never a buffered copy of the stream — with a
//! per-line and a per-stream byte cap
//! ([`Coordinator::with_event_stream_cap`]) turning hostile or runaway
//! streams into a loud [`DispatchError::EventOverflow`] instead of
//! unbounded memory. The coordinator's failure handling, in escalation
//! order: 429 backpressure absorbed as backoff-and-retry without consuming
//! an attempt ([`Coordinator::busy_backoffs`] counts them); capped
//! exponential backoff with deterministic jitter ([`RetryPolicy`]);
//! reassignment of campaigns lost in flight (logged exactly once per
//! loss); quarantine → retire → readmit worker health tracking driven by
//! `/healthz` heartbeats ([`FleetHealth`]); replay verification of every
//! retried stream against the folded prefix's running hash (divergence
//! fails the whole dispatch loudly); and graceful degradation to local
//! in-process execution when the entire fleet is lost. The
//! [`dispatch`-module docs](crate::dispatch) spell out the full failure
//! model, including the one fault class that is detected but not repaired
//! (in-flight corruption that forges *valid* JSON is indistinguishable
//! from nondeterminism and is reported as divergence).
//!
//! [`FaultyTransport`] is the matching chaos-injection layer: a
//! [`Transport`] wrapper that refuses connects, cuts or stalls streams at
//! byte *K*, corrupts a byte, or truncates writes, on a per-connection
//! *or* per-request schedule (the request axis matters under keep-alive,
//! where one socket carries many requests) — the chaos suites drive the
//! coordinator through it and assert the merged reports stay
//! byte-identical to a fault-free run, with strictly fewer connections
//! than requests.
//!
//! # Fleet observability
//!
//! [`FleetMonitor`] (what `experiments fleet --workers a:1,b:2` runs) is a
//! std-only live dashboard over a running fleet: it probes each worker's
//! `/healthz` census once per frame, tails the oldest running campaign's
//! NDJSON feed in a background thread per worker, and renders one
//! `[fleet]`-prefixed stderr line per worker per frame — health state
//! (healthy / quarantined / retired, via the same [`FleetHealth`] state
//! machine the coordinator uses), queue depth against capacity, running
//! count, tests/sec, coverage and detections. It needs no privileged
//! endpoint: everything it shows comes from the public census and the
//! event stream.
//!
//! # Architecture
//!
//! [`CampaignServer`] couples three pieces: an accept loop (thread per
//! connection — campaign execution dwarfs connection cost at this
//! protocol's request rates), a bounded worker pool (`--workers N`, sized by
//! the CLI from the same `Parallelism` budget as the experiment grid), and
//! a shared hub mapping campaign ids to their spec, status,
//! `EventBroadcast` (the fan-out sink behind `/events`) and `CancelToken`.
//! The campaign hot path never touches hub locks: the only writer into a
//! broadcast is the campaign's own `EventLog`, and subscribers read
//! append-only history under a condvar.
//!
//! [`Client`] is the matching blocking client — submit, status, events,
//! report, cancel, shutdown — used by the in-tree round-trip suites and
//! `examples/remote_campaign.rs`. It keeps a bounded pool of idle
//! keep-alive connections per client (clones share the pool), checks one
//! out per request, and retries exactly once on a fresh socket when a
//! reused connection turns out to have died since its last request — a
//! failure on a *fresh* connection is surfaced, never retried, so
//! non-idempotent requests are not silently replayed.
//!
//! [`CampaignSpec`]: mabfuzz::CampaignSpec
//! [`CampaignSpec::from_json`]: mabfuzz::CampaignSpec::from_json
//! [`CampaignObserver`]: mabfuzz::CampaignObserver

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod dispatch;
mod health;
mod http;
mod hub;
mod monitor;
mod server;
mod transport;

pub use client::{CampaignStatus, Client, ClientError, HealthSnapshot};
pub use dispatch::{
    Coordinator, DispatchError, JobOutcome, RetryPolicy, DEFAULT_EVENT_STREAM_CAP,
    MAX_EVENT_LINE_BYTES,
};
pub use health::{FleetHealth, WorkerState, DEFAULT_RETIRE_THRESHOLD};
pub use hub::Status;
pub use monitor::FleetMonitor;
pub use server::{CampaignServer, DEFAULT_IO_TIMEOUT};
pub use transport::{Connection, Fault, FaultyTransport, TcpTransport, Transport};
