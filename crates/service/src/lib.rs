//! The MABFuzz campaign service: remote campaign control over HTTP.
//!
//! This crate turns the workspace's declarative campaign surface into a
//! multi-tenant daemon: clients submit [`CampaignSpec`] documents over TCP,
//! a bounded worker pool executes them through
//! `Campaign::from_spec(..).execute()`, and every campaign's live per-test
//! [`CampaignObserver`] protocol is streamed back as NDJSON — **byte
//! identical** to the `EventLog` JSONL the CLI writes for the same spec, so
//! the golden streams under `tests/golden/` pin the wire format too. It is
//! what `experiments serve --addr 127.0.0.1:PORT --workers N` runs, and the
//! substrate the ROADMAP's "remote campaign control, live dashboards" item
//! called for.
//!
//! Everything is `std`-only (`std::net::TcpListener`, hand-rolled minimal
//! HTTP/1.1): the workspace is offline-shimmed, so no external dependencies.
//!
//! # Protocol reference
//!
//! All responses are JSON (errors: `{"error":"<message>"}`) and close the
//! connection (`Connection: close` — one request per connection).
//!
//! | Method & path | Body | Response |
//! |---|---|---|
//! | `POST /campaigns` | strict [`CampaignSpec`] JSON | `201` `{"id":N,"status":"queued"}` |
//! | `GET /campaigns` | — | `200` `{"campaigns":[{"id","status","label","report":null},…]}` |
//! | `GET /campaigns/{id}` | — | `200` `{"id","status","label","report"}` |
//! | `GET /campaigns/{id}/events` | — | `200` chunked NDJSON event stream |
//! | `GET /campaigns/{id}/report` | — | `200` final campaign report document |
//! | `POST /campaigns/{id}/cancel` | — | `200` `{"id":N,"status":"<at request time>"}` |
//! | `DELETE /campaigns/{id}` | — | `200` `{"id":N,"status":"deleted"}` |
//! | `POST /shutdown` | — | `200` `{"status":"shutting down"}` |
//! | `GET /healthz` | — | `200` `{"status":"ok","campaigns":N}` |
//!
//! When the daemon runs with an auth token (`experiments serve
//! --auth-token T`), every route except `GET /healthz` additionally
//! requires an `Authorization: Bearer T` header; see
//! [Hardening](#hardening) below.
//!
//! Details per endpoint:
//!
//! * **`POST /campaigns`** — the body goes through the strict spec codec
//!   ([`CampaignSpec::from_json`]): unknown fields, unknown policies and
//!   invalid parameters are rejected with `400` and exactly the `SpecError`
//!   text the CLI prints (`unknown spec field `polcy``, `unknown policy …
//!   (valid policies: …)`, …). The spec must be self-contained (carry a
//!   `"processor"` section); otherwise `400` with the `MissingProcessor`
//!   text.
//! * **`GET /campaigns/{id}/events`** — replays the campaign's event stream
//!   from the start (late subscribers see the complete deterministic
//!   history) and then follows it live, as chunked
//!   `application/x-ndjson`, until the campaign reaches a terminal state.
//!   The de-chunked payload is byte-identical to the `EventLog` JSONL of
//!   the same spec: one event object per line, in deterministic fold order,
//!   shard-count invariant. Any number of subscribers may tail one campaign
//!   concurrently; each holds its own cursor into the shared broadcast
//!   ring.
//! * **`GET /campaigns/{id}/report`** — the final report document, rendered
//!   by the workspace's single campaign renderer
//!   (`mabfuzz::report::campaign_json`), byte-identical to
//!   `experiments run --spec <spec> --json` for the same spec. `409` while
//!   the campaign is queued/running; for `failed` campaigns the document is
//!   `{"error":"<why>"}`.
//! * **`POST /campaigns/{id}/cancel`** — flags the campaign's
//!   `CancelToken`; the run stops at its next deterministic fold boundary.
//!   Its status becomes `cancelled`, its report covers the folded prefix,
//!   and its event stream — which omits the final `campaign_finished`
//!   event — is a strict prefix of the stream the uncancelled campaign
//!   would have produced. Cancelling a terminal campaign is a no-op.
//! * **`DELETE /campaigns/{id}`** — evicts a *terminal* campaign, freeing
//!   its retained event history and report (the hub otherwise keeps every
//!   stream for replay-from-start; long-running deployments delete what
//!   they have consumed). `409` while the campaign is queued or running.
//! * **`POST /shutdown`** — the daemon stops accepting submissions, drains
//!   already-queued campaigns, joins its workers and exits `serve()`
//!   cleanly.
//! * **`GET /healthz`** — a cheap liveness probe (`{"status":"ok",
//!   "campaigns":N}`) that never touches campaign execution. It is the
//!   heartbeat the dispatch coordinator uses to readmit quarantined
//!   workers, and it is deliberately **exempt from auth** so
//!   load-balancer-style probes work without credentials. It reveals only
//!   liveness and a campaign count — never spec contents, labels or
//!   reports, which all sit behind the token.
//!
//! Campaign lifecycle: `queued → running → finished | cancelled | failed`.
//!
//! # Hardening
//!
//! Three daemon-side protections, all off by default except the I/O
//! deadline, all configured through `CampaignServer` builder methods (and
//! the matching `experiments serve` flags):
//!
//! * **Socket deadlines** ([`CampaignServer::with_io_timeout`],
//!   `--io-timeout-ms`): every accepted connection gets read *and* write
//!   timeouts (default 30 s), so a slowloris peer — one that connects and
//!   then trickles or stops sending bytes — times out instead of pinning a
//!   connection thread forever, and a stalled event-stream consumer cannot
//!   wedge a writer.
//! * **Shared-secret auth** ([`CampaignServer::with_auth_token`],
//!   `--auth-token`): when set, every route except `GET /healthz` requires
//!   `Authorization: Bearer <token>`. Tokens are compared in constant time
//!   (no early exit on the first differing byte), and mismatches get
//!   `401 Unauthorized`. [`Client::with_auth_token`] sends the header.
//! * **TTL eviction** ([`CampaignServer::with_ttl`], `--ttl` seconds):
//!   terminal campaigns (finished / cancelled / failed) are auto-evicted
//!   once their TTL lapses, counted **from the terminal transition**, not
//!   from submission — a long-running campaign is never reaped mid-flight.
//!   Sweeps happen opportunistically on incoming connections (no timer
//!   thread). Explicit `DELETE /campaigns/{id}` works exactly as before,
//!   with or without a TTL.
//!
//! # Dispatch and the failure model
//!
//! [`Coordinator`] (what `experiments dispatch --workers a:1,b:2 …` runs)
//! partitions a list of self-contained specs across several `serve`
//! daemons and merges the results into exactly what a local run would have
//! produced — campaigns are seeded and deterministic, which is what makes
//! retrying and reassigning them safe. The coordinator's failure handling,
//! in escalation order: capped exponential backoff with deterministic
//! jitter ([`RetryPolicy`]); reassignment of campaigns lost in flight
//! (logged exactly once per loss); quarantine → retire → readmit worker
//! health tracking driven by `/healthz` heartbeats ([`FleetHealth`]);
//! byte-level replay verification against every previously folded NDJSON
//! prefix (divergence fails the whole dispatch loudly); and graceful
//! degradation to local in-process execution when the entire fleet is
//! lost. The [`dispatch`-module docs](crate::dispatch) spell out the full
//! failure model, including the one fault class that is detected but not
//! repaired (in-flight corruption that forges *valid* JSON is
//! indistinguishable from nondeterminism and is reported as divergence).
//!
//! [`FaultyTransport`] is the matching chaos-injection layer: a
//! [`Transport`] wrapper that refuses connects, cuts or stalls streams at
//! byte *K*, corrupts a byte, or truncates writes, on a per-connection
//! schedule — the chaos suites drive the coordinator through it and assert
//! the merged reports stay byte-identical to a fault-free run.
//!
//! # Architecture
//!
//! [`CampaignServer`] couples three pieces: an accept loop (thread per
//! connection — campaign execution dwarfs connection cost at this
//! protocol's request rates), a bounded worker pool (`--workers N`, sized by
//! the CLI from the same `Parallelism` budget as the experiment grid), and
//! a shared hub mapping campaign ids to their spec, status,
//! `EventBroadcast` (the fan-out sink behind `/events`) and `CancelToken`.
//! The campaign hot path never touches hub locks: the only writer into a
//! broadcast is the campaign's own `EventLog`, and subscribers read
//! append-only history under a condvar.
//!
//! [`Client`] is the matching blocking client — submit, status, events,
//! report, cancel, shutdown — used by the in-tree round-trip suites and
//! `examples/remote_campaign.rs`.
//!
//! [`CampaignSpec`]: mabfuzz::CampaignSpec
//! [`CampaignSpec::from_json`]: mabfuzz::CampaignSpec::from_json
//! [`CampaignObserver`]: mabfuzz::CampaignObserver

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod dispatch;
mod health;
mod http;
mod hub;
mod server;
mod transport;

pub use client::{CampaignStatus, Client, ClientError};
pub use dispatch::{Coordinator, DispatchError, JobOutcome, RetryPolicy};
pub use health::{FleetHealth, WorkerState, DEFAULT_RETIRE_THRESHOLD};
pub use hub::Status;
pub use server::{CampaignServer, DEFAULT_IO_TIMEOUT};
pub use transport::{Connection, Fault, FaultyTransport, TcpTransport, Transport};
