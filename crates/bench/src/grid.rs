//! The parallel experiment engine.
//!
//! Every experiment in the paper's evaluation — Table I, Fig. 3, Fig. 4 and
//! the §IV-A ablations — is a grid of *independent* campaign cells
//! (repetitions × fuzzers × processors × vulnerabilities or parameter
//! settings). Each cell derives its RNG seed from `base_seed + repetition`,
//! so cells share no state and can run on any thread without changing their
//! results; only the *reduction* over cells (means, curve averaging) is
//! order-sensitive, and [`run_grid`] preserves input order in its output.
//!
//! The executor is a std-only work-stealing-lite pool: scoped worker threads
//! pull cell indices from a shared atomic counter and write results into
//! their output slots. (The environment vendors no external crates, so this
//! plays the role a `rayon` parallel iterator otherwise would, behind the
//! same "flat work list in, ordered results out" contract.)

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a grid of experiment cells is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One cell after another on the calling thread — the reference
    /// behaviour every parallel run must reproduce byte for byte.
    Serial,
    /// A fixed number of worker threads.
    Threads(NonZeroUsize),
    /// One worker per available core (the default).
    #[default]
    Auto,
}

impl Parallelism {
    /// Parses `serial`, `auto` or a thread count.
    pub fn parse(text: &str) -> Option<Parallelism> {
        match text.trim().to_ascii_lowercase().as_str() {
            "serial" | "1" => Some(Parallelism::Serial),
            "auto" | "parallel" => Some(Parallelism::Auto),
            n => n.parse::<usize>().ok().and_then(NonZeroUsize::new).map(Parallelism::Threads),
        }
    }

    /// Returns the number of worker threads this mode uses.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.get(),
            Parallelism::Auto => {
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
            }
        }
    }

    /// Composes the grid's cell-level parallelism with intra-campaign
    /// sharding under one thread budget: when every cell itself runs
    /// `shards_per_cell` simulation shards, the grid gets
    /// `workers / shards_per_cell` cell workers (at least one), so the two
    /// layers together stay at roughly the original worker count instead of
    /// multiplying into oversubscription.
    ///
    /// `Serial` stays `Serial` (the reference mode pins one thread of cells
    /// regardless of what the cells spawn internally), and a shard count of
    /// one returns the mode unchanged.
    pub fn with_shard_budget(self, shards_per_cell: usize) -> Parallelism {
        let shards = shards_per_cell.max(1);
        match self {
            Parallelism::Serial => Parallelism::Serial,
            _ if shards == 1 => self,
            mode => {
                let workers = (mode.workers() / shards).max(1);
                match NonZeroUsize::new(workers) {
                    Some(n) => Parallelism::Threads(n),
                    None => Parallelism::Serial,
                }
            }
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Serial => f.write_str("serial"),
            Parallelism::Threads(n) => write!(f, "{n} threads"),
            Parallelism::Auto => write!(f, "auto ({} threads)", self.workers()),
        }
    }
}

/// Runs `work` over every cell of `cells` and returns the results in input
/// order.
///
/// Cells are claimed dynamically (an atomic cursor), so heterogeneous cell
/// durations — a detection campaign that trips after 40 tests next to one
/// that runs to its cap — still load-balance across workers. With
/// [`Parallelism::Serial`], or a single worker, or fewer than two cells, the
/// grid degenerates to a plain in-order loop on the calling thread.
///
/// # Panics
///
/// Propagates a panic from any cell after the grid drains.
pub fn run_grid<T, U, F>(parallelism: Parallelism, cells: &[T], work: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = parallelism.workers().min(cells.len());
    if workers <= 1 {
        return cells.iter().map(work).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(index) else { break };
                let result = work(cell);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed cell stores its result")
        })
        .collect()
}

/// Splits ordered grid results back into per-group slices of `repetitions`
/// cells each, for reductions that fold repetitions in order.
///
/// The returned closure yields the next group on every call. Group
/// association relies on the reduction loops iterating in exactly the same
/// nesting as the cell-construction loops, so exhausting the results early
/// panics (drifted loops must fail loudly, not cross-wire published
/// numbers). With `repetitions == 0` there are no cells at all and every
/// call yields an empty group.
pub fn result_groups<'a, T>(results: &'a [T], repetitions: u64) -> impl FnMut() -> &'a [T] + 'a {
    let mut groups = results.chunks(repetitions.max(1) as usize);
    move || {
        if repetitions == 0 {
            &[]
        } else {
            groups.next().expect("one result chunk per cell group")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_parses_and_reports_workers() {
        assert_eq!(Parallelism::parse("serial"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::parse("auto"), Some(Parallelism::Auto));
        assert_eq!(
            Parallelism::parse("4"),
            Some(Parallelism::Threads(NonZeroUsize::new(4).unwrap()))
        );
        assert_eq!(Parallelism::parse("0"), None);
        assert_eq!(Parallelism::parse("many"), None);
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::parse("3").unwrap().workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
        assert!(Parallelism::Auto.to_string().contains("auto"));
    }

    #[test]
    fn shard_budget_composes_with_cell_parallelism() {
        let eight = Parallelism::Threads(NonZeroUsize::new(8).unwrap());
        assert_eq!(eight.with_shard_budget(4).workers(), 2);
        assert_eq!(eight.with_shard_budget(16).workers(), 1, "budget never drops below one");
        assert_eq!(eight.with_shard_budget(1), eight, "one shard leaves the mode untouched");
        assert_eq!(eight.with_shard_budget(0), eight, "zero clamps to one shard");
        assert_eq!(Parallelism::Serial.with_shard_budget(4), Parallelism::Serial);
        let auto = Parallelism::Auto.with_shard_budget(2);
        assert!(auto.workers() >= 1);
    }

    #[test]
    fn grid_preserves_input_order() {
        let cells: Vec<u64> = (0..100).collect();
        let serial = run_grid(Parallelism::Serial, &cells, |c| c * 3);
        let parallel = run_grid(Parallelism::Auto, &cells, |c| c * 3);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 21);
    }

    #[test]
    fn grid_handles_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_grid::<_, u32, _>(Parallelism::Auto, &empty, |c| *c).is_empty());
        assert_eq!(run_grid(Parallelism::Auto, &[5u32], |c| c + 1), vec![6]);
    }

    #[test]
    fn result_groups_chunk_in_order_and_fail_on_drift() {
        let results: Vec<u32> = (0..6).collect();
        let mut groups = result_groups(&results, 2);
        assert_eq!(groups(), &[0, 1]);
        assert_eq!(groups(), &[2, 3]);
        assert_eq!(groups(), &[4, 5]);
        let drained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(groups));
        assert!(drained.is_err(), "a drifted extra group must panic");

        let empty: Vec<u32> = Vec::new();
        let mut none = result_groups(&empty, 0);
        assert!(none().is_empty());
        assert!(none().is_empty(), "zero repetitions always yields empty groups");
    }

    #[test]
    fn grid_actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::time::{Duration, Instant};
        let seen = Mutex::new(HashSet::new());
        let cells: Vec<u32> = (0..8).collect();
        let two = Parallelism::Threads(NonZeroUsize::new(2).unwrap());
        run_grid(two, &cells, |&cell| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // The first cell's worker holds its slot until the second worker
            // has demonstrably claimed a cell too, so the assertion below is
            // deterministic even on an oversubscribed single-CPU runner
            // (bounded by the deadline rather than scheduling luck).
            if cell == 0 {
                let deadline = Instant::now() + Duration::from_secs(5);
                while Instant::now() < deadline && seen.lock().unwrap().len() < 2 {
                    std::thread::yield_now();
                }
            }
        });
        assert!(seen.lock().unwrap().len() >= 2, "two workers should both claim cells");
    }
}
