//! Deterministic JSON rendering of the experiment results.
//!
//! The serial-versus-parallel contract of the experiment engine is
//! *byte-identical output*; these renderers are the bytes being compared (and
//! what `experiments --json` emits for downstream tooling). Rendering is by
//! hand — no serde machinery — so field order and number formatting are
//! explicit and stable: floats use Rust's shortest-round-trip `Display`,
//! `None` renders as `null`.


use mabfuzz::{CampaignSpec, MabFuzzOutcome};

use crate::ablation::AblationSweep;
use crate::fig3::Fig3Result;
use crate::fig4::Fig4Result;
use crate::table1::Table1Result;
use crate::ExperimentBudget;

/// Escapes a string for embedding in JSON (the workspace's shared escaping
/// conventions, delegated to `mabfuzz::report::json_string` so the report,
/// spec, event-stream and service renderers cannot drift apart).
pub fn escape(text: &str) -> String {
    mabfuzz::report::json_string(text)
}

fn float(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_owned()
    }
}

fn opt_float(value: Option<f64>) -> String {
    value.map_or_else(|| "null".to_owned(), float)
}

fn budget(budget: &ExperimentBudget) -> String {
    format!(
        "{{\"coverage_tests\":{},\"detection_cap\":{},\"repetitions\":{},\"base_seed\":{}}}",
        budget.coverage_tests, budget.detection_cap, budget.repetitions, budget.base_seed
    )
}

/// Renders a Table I result.
pub fn table1(result: &Table1Result) -> String {
    let rows: Vec<String> = result
        .rows
        .iter()
        .map(|row| {
            let mabfuzz: Vec<String> = row
                .mabfuzz
                .iter()
                .map(|(kind, cell)| {
                    format!(
                        "{{\"algorithm\":{},\"mean_tests\":{},\"detected_in\":{},\"repetitions\":{},\"speedup\":{}}}",
                        escape(kind.name()),
                        float(cell.mean_tests),
                        cell.detected_in,
                        cell.repetitions,
                        opt_float(row.speedup(*kind))
                    )
                })
                .collect();
            format!(
                "{{\"vulnerability\":{},\"cwe\":{},\"core\":{},\"thehuzz\":{{\"mean_tests\":{},\"detected_in\":{},\"repetitions\":{}}},\"mabfuzz\":[{}]}}",
                escape(row.vulnerability.id()),
                row.vulnerability.cwe(),
                escape(row.vulnerability.native_core()),
                float(row.thehuzz.mean_tests),
                row.thehuzz.detected_in,
                row.thehuzz.repetitions,
                mabfuzz.join(",")
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"table1\",\"budget\":{},\"best_speedup\":{},\"rows\":[{}]}}",
        budget(&result.budget),
        opt_float(result.best_speedup()),
        rows.join(",")
    )
}

/// Renders a Fig. 3 result.
pub fn fig3(result: &Fig3Result) -> String {
    let processors: Vec<String> = result
        .processors
        .iter()
        .map(|curves| {
            let series: Vec<String> = curves
                .curves
                .iter()
                .map(|(fuzzer, curve)| {
                    let points: Vec<String> = curve
                        .points()
                        .iter()
                        .map(|p| format!("[{},{}]", p.tests, p.covered))
                        .collect();
                    format!(
                        "{{\"fuzzer\":{},\"final_coverage\":{},\"points\":[{}]}}",
                        escape(&fuzzer.name()),
                        curve.final_coverage(),
                        points.join(",")
                    )
                })
                .collect();
            format!(
                "{{\"processor\":{},\"space_len\":{},\"curves\":[{}]}}",
                escape(curves.processor.name()),
                curves.space_len,
                series.join(",")
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"fig3\",\"budget\":{},\"processors\":[{}]}}",
        budget(&result.budget),
        processors.join(",")
    )
}

/// Renders a Fig. 4 result.
pub fn fig4(result: &Fig4Result) -> String {
    let processors: Vec<String> = result
        .processors
        .iter()
        .map(|speedups| {
            let cells: Vec<String> = speedups
                .cells
                .iter()
                .map(|cell| {
                    format!(
                        "{{\"fuzzer\":{},\"coverage_speedup\":{},\"coverage_increment_percent\":{}}}",
                        escape(&cell.fuzzer.name()),
                        opt_float(cell.coverage_speedup),
                        float(cell.coverage_increment_percent)
                    )
                })
                .collect();
            format!(
                "{{\"processor\":{},\"baseline_final_coverage\":{},\"baseline_tests_to_final\":{},\"cells\":[{}]}}",
                escape(speedups.processor.name()),
                speedups.baseline_final_coverage,
                speedups.baseline_tests_to_final,
                cells.join(",")
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"fig4\",\"budget\":{},\"best_speedup\":{},\"processors\":[{}]}}",
        budget(&result.budget),
        opt_float(result.best_speedup()),
        processors.join(",")
    )
}

/// Renders one ablation sweep.
pub fn ablation(sweep: &AblationSweep) -> String {
    let points: Vec<String> = sweep
        .points
        .iter()
        .map(|point| {
            format!(
                "{{\"setting\":{},\"final_coverage\":{},\"resets\":{}}}",
                escape(&point.setting),
                float(point.final_coverage),
                float(point.resets)
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"ablation\",\"parameter\":{},\"processor\":{},\"points\":[{}]}}",
        escape(&sweep.parameter),
        escape(sweep.processor.name()),
        points.join(",")
    )
}

/// Renders several ablation sweeps as one JSON array.
pub fn ablations(sweeps: &[AblationSweep]) -> String {
    let rendered: Vec<String> = sweeps.iter().map(ablation).collect();
    format!("[{}]", rendered.join(","))
}

/// Renders the outcome of one spec-driven campaign (`experiments run
/// --spec`): label, policy, the spec that produced it, coverage curve,
/// detections and per-arm summary — one deterministic JSON document.
///
/// Delegates to [`mabfuzz::report::campaign_json`], the workspace's single
/// campaign-report renderer, so the CLI's document and the campaign
/// service's `GET /campaigns/{id}/report` body cannot drift apart.
pub fn campaign(spec: &CampaignSpec, outcome: &MabFuzzOutcome) -> String {
    mabfuzz::report::campaign_json(spec, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_render_shortest_and_null() {
        assert_eq!(float(600.0), "600");
        assert_eq!(float(13.25), "13.25");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(opt_float(None), "null");
    }

    #[test]
    fn budget_renders_all_fields() {
        let text = budget(&ExperimentBudget::smoke());
        assert!(text.contains("\"coverage_tests\":120"));
        assert!(text.contains("\"base_seed\":7"));
    }
}
