//! Fig. 3 — branch coverage achieved versus number of tests, per processor
//! and per fuzzer.

use coverage::CoverageSeries;
use mabfuzz::{BugSpec, CampaignSummary, ProcessorSpec};
use proc_sim::ProcessorKind;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;
use crate::runner::{CellRunner, LocalRunner};
use crate::{
    campaign_config, processor_with_native_bugs, ExperimentBudget, FuzzerKind, Parallelism,
    ShardPlan,
};

/// The coverage curves of every fuzzer on one processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorCurves {
    /// The processor the curves belong to.
    pub processor: ProcessorKind,
    /// Size of the processor's coverage space (the curve asymptote).
    pub space_len: usize,
    /// One averaged curve per fuzzer, in [`FuzzerKind::ALL`] order.
    pub curves: Vec<(FuzzerKind, CoverageSeries)>,
}

impl ProcessorCurves {
    /// Returns the curve of a specific fuzzer.
    pub fn curve(&self, fuzzer: FuzzerKind) -> Option<&CoverageSeries> {
        self.curves.iter().find(|(k, _)| *k == fuzzer).map(|(_, c)| c)
    }

    /// Returns the final coverage of a specific fuzzer.
    pub fn final_coverage(&self, fuzzer: FuzzerKind) -> usize {
        self.curve(fuzzer).map_or(0, CoverageSeries::final_coverage)
    }
}

/// The full Fig. 3 reproduction: one set of curves per processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Curves per processor, in paper order (CVA6, Rocket, BOOM).
    pub processors: Vec<ProcessorCurves>,
    /// The budget the experiment ran under.
    pub budget: ExperimentBudget,
}

impl Fig3Result {
    /// Returns the curves of one processor.
    pub fn processor(&self, kind: ProcessorKind) -> Option<&ProcessorCurves> {
        self.processors.iter().find(|p| p.processor == kind)
    }

    /// Renders the curves as a table of sampled points (one row per sampled
    /// test count, one column per fuzzer) for the given processor.
    pub fn to_table(&self, kind: ProcessorKind, samples: usize) -> TextTable {
        let mut header = vec!["#Tests".to_owned()];
        header.extend(FuzzerKind::ALL.iter().map(|f| f.name().into_owned()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(&header_refs);
        let Some(curves) = self.processor(kind) else {
            return table;
        };
        // Use the baseline's sample positions as the x axis.
        let reference = curves.curves[0].1.downsample(samples);
        for point in reference.points() {
            let mut row = vec![point.tests.to_string()];
            for (_, curve) in &curves.curves {
                row.push(curve.coverage_at(point.tests).to_string());
            }
            table.row(row);
        }
        table
    }
}

/// Runs the Fig. 3 experiment for the given processors, spreading the
/// campaign grid across threads as requested.
///
/// Each (processor, fuzzer) pair runs `budget.repetitions` campaigns of
/// `budget.coverage_tests` tests; the reported curve is the per-sample mean.
/// Results are byte-identical for every [`Parallelism`] mode: each cell's
/// RNG seed is `base_seed + repetition` and the curve averaging folds the
/// repetitions in order.
pub fn run_for_with(
    processors: &[ProcessorKind],
    budget: &ExperimentBudget,
    parallelism: Parallelism,
) -> Fig3Result {
    run_for_planned(processors, budget, parallelism, &ShardPlan::serial())
}

/// Runs the Fig. 3 experiment with every MABFuzz campaign sharded
/// intra-campaign under `plan` (the TheHuzz baseline stays serial).
///
/// Results are byte-identical across shard counts for a fixed batch size;
/// callers composing thread budgets should pre-divide `parallelism` with
/// [`Parallelism::with_shard_budget`] — the grid itself only spreads cells.
pub fn run_for_planned(
    processors: &[ProcessorKind],
    budget: &ExperimentBudget,
    parallelism: Parallelism,
    plan: &ShardPlan,
) -> Fig3Result {
    run_for_on(processors, budget, plan, &LocalRunner::new(parallelism))
        .expect("local cell execution cannot fail")
}

/// Runs the Fig. 3 experiment with cell execution delegated to `runner` —
/// the seam `experiments dispatch` uses to farm cells out to remote
/// workers. Any runner that executes the specs faithfully yields a result
/// byte-identical to the local one.
///
/// # Errors
///
/// Whatever error the runner reports (e.g. a dispatch failure); local
/// runners never fail.
pub fn run_for_on(
    processors: &[ProcessorKind],
    budget: &ExperimentBudget,
    plan: &ShardPlan,
    runner: &dyn CellRunner,
) -> Result<Fig3Result, String> {
    let mut specs = Vec::new();
    for &processor in processors {
        for &fuzzer in &FuzzerKind::ALL {
            for repetition in 0..budget.repetitions {
                let config = campaign_config(budget.coverage_tests);
                let mut spec =
                    crate::campaign_spec(fuzzer, config, budget.base_seed + repetition, plan);
                spec.processor =
                    Some(ProcessorSpec { core: processor, bugs: BugSpec::Native });
                specs.push(spec);
            }
        }
    }

    let summaries = runner.run_cells(&specs)?;

    // Reduce per (processor, fuzzer) group, folding repetitions in order
    // (the loop nesting here must mirror the cell-construction loops above).
    let mut next_group = crate::grid::result_groups(&summaries, budget.repetitions);
    let processor_curves = processors
        .iter()
        .map(|&kind| {
            let space_len = processor_with_native_bugs(kind).coverage_space().len();
            let curves = FuzzerKind::ALL
                .iter()
                .map(|&fuzzer| (fuzzer, averaged_curve(fuzzer, kind, next_group())))
                .collect();
            ProcessorCurves { processor: kind, space_len, curves }
        })
        .collect();
    Ok(Fig3Result { processors: processor_curves, budget: budget.clone() })
}

/// Runs the Fig. 3 experiment for the given processors.
pub fn run_for(processors: &[ProcessorKind], budget: &ExperimentBudget) -> Fig3Result {
    run_for_with(processors, budget, Parallelism::default())
}

/// Runs the full Fig. 3 experiment (all three processors).
pub fn run(budget: &ExperimentBudget) -> Fig3Result {
    run_for(&ProcessorKind::ALL, budget)
}

/// Runs the full Fig. 3 experiment with explicit parallelism.
pub fn run_with(budget: &ExperimentBudget, parallelism: Parallelism) -> Fig3Result {
    run_for_with(&ProcessorKind::ALL, budget, parallelism)
}

fn averaged_curve(
    fuzzer: FuzzerKind,
    kind: ProcessorKind,
    runs: &[CampaignSummary],
) -> CoverageSeries {
    // Average the cumulative coverage at the sample positions of the first run.
    let label = format!("{} on {}", fuzzer.name(), kind.name());
    let mut series = CoverageSeries::new(label);
    let Some(reference) = runs.first() else {
        return series;
    };
    for point in reference.series.points() {
        let mean: f64 = runs
            .iter()
            .map(|summary| summary.series.coverage_at(point.tests) as f64)
            .sum::<f64>()
            / runs.len() as f64;
        series.record(point.tests, mean.round() as usize);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_curves_for_every_fuzzer() {
        let budget = ExperimentBudget::smoke();
        let result = run_for(&[ProcessorKind::Rocket], &budget);
        let curves = result.processor(ProcessorKind::Rocket).expect("rocket curves exist");
        assert_eq!(curves.curves.len(), 4);
        for (fuzzer, series) in &curves.curves {
            assert!(series.final_coverage() > 0, "{fuzzer} covered nothing");
            assert!(series.final_coverage() <= curves.space_len);
        }
        assert!(result.processor(ProcessorKind::Boom).is_none());
        let table = result.to_table(ProcessorKind::Rocket, 6);
        assert!(!table.is_empty());
        assert!(table.render().contains("TheHuzz"));
    }

    #[test]
    fn curves_are_monotone() {
        let budget = ExperimentBudget::smoke();
        let result = run_for(&[ProcessorKind::Cva6], &budget);
        let curves = result.processor(ProcessorKind::Cva6).unwrap();
        for (fuzzer, series) in &curves.curves {
            let points = series.points();
            assert!(
                points.windows(2).all(|w| w[1].covered >= w[0].covered),
                "{fuzzer} coverage curve must be non-decreasing"
            );
        }
    }
}
