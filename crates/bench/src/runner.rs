//! Pluggable cell execution for the experiment grids.
//!
//! Every experiment (Table I, Fig. 3, the ablations) reduces a flat list of
//! campaign cells, each described by a self-contained [`CampaignSpec`]. The
//! [`CellRunner`] trait is the seam between *what* those cells are and
//! *where* they execute: [`LocalRunner`] spreads them across in-process
//! threads exactly as before, while `experiments dispatch` plugs in a
//! remote runner backed by the `mabfuzz-service` coordinator. Because
//! campaigns are deterministic and the reductions consume only the exact
//! integers of [`CampaignSummary`], every runner produces byte-identical
//! experiment reports.

use mabfuzz::{Campaign, CampaignSpec, CampaignSummary};

use crate::Parallelism;

/// Executes a batch of campaign cells and returns one summary per spec, in
/// input order.
pub trait CellRunner: Sync {
    /// Runs every spec to completion. Implementations must preserve input
    /// order and must not skip cells; an `Err` aborts the experiment.
    fn run_cells(&self, specs: &[CampaignSpec]) -> Result<Vec<CampaignSummary>, String>;
}

/// The in-process runner: cells spread across threads by the same
/// [`Parallelism`] budget the grid executor always used.
#[derive(Debug, Clone, Copy)]
pub struct LocalRunner {
    parallelism: Parallelism,
}

impl LocalRunner {
    /// A runner executing cells under `parallelism`.
    pub fn new(parallelism: Parallelism) -> LocalRunner {
        LocalRunner { parallelism }
    }
}

impl CellRunner for LocalRunner {
    fn run_cells(&self, specs: &[CampaignSpec]) -> Result<Vec<CampaignSummary>, String> {
        Ok(crate::run_grid(self.parallelism, specs, |spec| {
            let outcome = Campaign::from_spec(spec)
                .expect("grid specs are valid by construction")
                .execute();
            CampaignSummary::from_outcome(&outcome)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mabfuzz::BugSpec;
    use proc_sim::ProcessorKind;

    fn spec(seed: u64) -> CampaignSpec {
        CampaignSpec::builder()
            .max_tests(10)
            .rng_seed(seed)
            .processor(ProcessorKind::Rocket, BugSpec::None)
            .build()
            .expect("valid spec")
    }

    #[test]
    fn local_runner_matches_direct_execution_in_every_parallelism_mode() {
        let specs = vec![spec(1), spec(2), spec(3)];
        let direct: Vec<CampaignSummary> = specs
            .iter()
            .map(|s| {
                CampaignSummary::from_outcome(
                    &Campaign::from_spec(s).expect("valid spec").execute(),
                )
            })
            .collect();
        let serial = LocalRunner::new(Parallelism::Serial).run_cells(&specs).expect("serial");
        let three = std::num::NonZeroUsize::new(3).expect("nonzero");
        let threaded =
            LocalRunner::new(Parallelism::Threads(three)).run_cells(&specs).expect("threads");
        assert_eq!(serial, direct);
        assert_eq!(threaded, direct, "summaries are parallelism-invariant");
    }
}
