//! Table I — vulnerability-detection speedup of MABFuzz over TheHuzz.

use mab::BanditKind;
use mabfuzz::{BugSpec, CampaignSpec, ProcessorSpec};
use proc_sim::{ProcessorKind, Vulnerability};
use serde::{Deserialize, Serialize};

use crate::report::{format_speedup, TextTable};
use crate::runner::{CellRunner, LocalRunner};
use crate::{campaign_config, ExperimentBudget, FuzzerKind, Parallelism};

/// Detection statistics of one fuzzer for one vulnerability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionCell {
    /// Mean number of tests until the first architectural mismatch, averaged
    /// over the repetitions. Censored at the detection cap when a repetition
    /// never detected the bug.
    pub mean_tests: f64,
    /// How many repetitions detected the bug within the cap.
    pub detected_in: u64,
    /// Total repetitions run.
    pub repetitions: u64,
}

impl DetectionCell {
    /// Returns `true` when at least one repetition detected the bug.
    pub fn detected(&self) -> bool {
        self.detected_in > 0
    }
}

/// One row of Table I: a vulnerability, the baseline's tests-to-detection and
/// each MABFuzz algorithm's speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The vulnerability under test.
    pub vulnerability: Vulnerability,
    /// Baseline (TheHuzz) detection statistics.
    pub thehuzz: DetectionCell,
    /// Per-algorithm detection statistics, in [`BanditKind::ALL`] order.
    pub mabfuzz: Vec<(BanditKind, DetectionCell)>,
}

impl Table1Row {
    /// Returns the speedup of `kind` over the baseline
    /// (`baseline mean tests / algorithm mean tests`).
    pub fn speedup(&self, kind: BanditKind) -> Option<f64> {
        let cell = self.mabfuzz.iter().find(|(k, _)| *k == kind).map(|(_, c)| c)?;
        if cell.mean_tests <= 0.0 {
            return None;
        }
        Some(self.thehuzz.mean_tests / cell.mean_tests)
    }
}

/// The full Table I reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// One row per vulnerability, in paper order.
    pub rows: Vec<Table1Row>,
    /// The budget the experiment ran under.
    pub budget: ExperimentBudget,
}

impl Table1Result {
    /// Renders the result in the shape of the paper's Table I.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(&[
            "Vulnerability",
            "CWE",
            "Core",
            "TheHuzz #Tests",
            "eps-greedy speedup",
            "UCB speedup",
            "EXP3 speedup",
        ]);
        for row in &self.rows {
            table.row(vec![
                row.vulnerability.id().to_owned(),
                row.vulnerability.cwe().to_string(),
                row.vulnerability.native_core().to_owned(),
                format!("{:.1}", row.thehuzz.mean_tests),
                format_speedup(row.speedup(BanditKind::EpsilonGreedy)),
                format_speedup(row.speedup(BanditKind::Ucb1)),
                format_speedup(row.speedup(BanditKind::Exp3)),
            ]);
        }
        table
    }

    /// Returns the best (largest) speedup achieved across all rows and
    /// algorithms — the paper's headline "up to N× speedup" number.
    pub fn best_speedup(&self) -> Option<f64> {
        self.rows
            .iter()
            .flat_map(|row| BanditKind::ALL.iter().filter_map(|k| row.speedup(*k)))
            .fold(None, |best, s| Some(best.map_or(s, |b: f64| b.max(s))))
    }
}

/// Builds the self-contained spec of one Table I cell: `fuzzer` hunting
/// `vulnerability` (alone) on its native core, in detection mode, seeded
/// `base_seed + repetition`.
fn cell_spec(
    vulnerability: Vulnerability,
    fuzzer: FuzzerKind,
    repetition: u64,
    budget: &ExperimentBudget,
    plan: &crate::ShardPlan,
) -> CampaignSpec {
    let core = ProcessorKind::parse(vulnerability.native_core()).expect("known core name");
    let config = campaign_config(budget.detection_cap).detection_mode();
    let mut spec = crate::campaign_spec(fuzzer, config, budget.base_seed + repetition, plan);
    spec.processor = Some(ProcessorSpec { core, bugs: BugSpec::Only(vulnerability) });
    spec
}

/// Runs the detection experiment for a chosen subset of vulnerabilities,
/// spreading the campaign grid across threads as requested.
///
/// The result is byte-identical for every [`Parallelism`] mode: cells are
/// deterministic and the reduction (means over repetitions) folds in
/// repetition order.
pub fn run_for_with(
    vulnerabilities: &[Vulnerability],
    budget: &ExperimentBudget,
    parallelism: Parallelism,
) -> Table1Result {
    run_for_planned(vulnerabilities, budget, parallelism, &crate::ShardPlan::serial())
}

/// Runs the detection experiment with every MABFuzz campaign sharded
/// intra-campaign under `plan` (the TheHuzz baseline stays serial).
///
/// Results are byte-identical across shard counts for a fixed batch size.
pub fn run_for_planned(
    vulnerabilities: &[Vulnerability],
    budget: &ExperimentBudget,
    parallelism: Parallelism,
    plan: &crate::ShardPlan,
) -> Table1Result {
    run_for_on(vulnerabilities, budget, plan, &LocalRunner::new(parallelism))
        .expect("local cell execution cannot fail")
}

/// Runs the detection experiment with cell execution delegated to `runner` —
/// the seam `experiments dispatch` uses to farm cells out to remote
/// workers. Any runner that executes the specs faithfully yields a result
/// byte-identical to the local one.
///
/// # Errors
///
/// Whatever error the runner reports (e.g. a dispatch failure); local
/// runners never fail.
pub fn run_for_on(
    vulnerabilities: &[Vulnerability],
    budget: &ExperimentBudget,
    plan: &crate::ShardPlan,
    runner: &dyn CellRunner,
) -> Result<Table1Result, String> {
    let fuzzers: Vec<FuzzerKind> = std::iter::once(FuzzerKind::TheHuzz)
        .chain(BanditKind::ALL.iter().map(|&kind| FuzzerKind::MabFuzz(kind)))
        .collect();
    let mut specs = Vec::new();
    for &vulnerability in vulnerabilities {
        for &fuzzer in &fuzzers {
            for repetition in 0..budget.repetitions {
                specs.push(cell_spec(vulnerability, fuzzer, repetition, budget, plan));
            }
        }
    }

    let summaries = runner.run_cells(&specs)?;
    let detections: Vec<Option<u64>> =
        summaries.iter().map(|summary| summary.first_detection).collect();

    // Reduce per (vulnerability, fuzzer) group, folding repetitions in order
    // (the loop nesting here must mirror the cell-construction loops above).
    let mut next_group = crate::grid::result_groups(&detections, budget.repetitions);
    let mut rows = Vec::with_capacity(vulnerabilities.len());
    for &vulnerability in vulnerabilities {
        let mut cells_by_fuzzer =
            fuzzers.iter().map(|_| reduce_detection(next_group(), budget)).collect::<Vec<_>>().into_iter();
        let thehuzz = cells_by_fuzzer.next().expect("baseline cell present");
        let mabfuzz = BanditKind::ALL.iter().copied().zip(cells_by_fuzzer).collect();
        rows.push(Table1Row { vulnerability, thehuzz, mabfuzz });
    }
    Ok(Table1Result { rows, budget: budget.clone() })
}

fn reduce_detection(first_detections: &[Option<u64>], budget: &ExperimentBudget) -> DetectionCell {
    let mut total_tests = 0.0;
    let mut detected_in = 0;
    for detection in first_detections {
        match detection {
            Some(tests) => {
                total_tests += *tests as f64;
                detected_in += 1;
            }
            None => total_tests += budget.detection_cap as f64,
        }
    }
    DetectionCell {
        mean_tests: total_tests / budget.repetitions.max(1) as f64,
        detected_in,
        repetitions: budget.repetitions,
    }
}

/// Runs the detection experiment for a chosen subset of vulnerabilities on
/// all cores.
pub fn run_for(vulnerabilities: &[Vulnerability], budget: &ExperimentBudget) -> Table1Result {
    run_for_with(vulnerabilities, budget, Parallelism::default())
}

/// Runs the full Table I experiment (all seven vulnerabilities).
pub fn run(budget: &ExperimentBudget) -> Table1Result {
    run_for(&Vulnerability::ALL, budget)
}

/// Runs the full Table I experiment with explicit parallelism.
pub fn run_with(budget: &ExperimentBudget, parallelism: Parallelism) -> Table1Result {
    run_for_with(&Vulnerability::ALL, budget, parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_vulnerability_is_detected_quickly_by_every_fuzzer() {
        let budget = ExperimentBudget { detection_cap: 300, repetitions: 1, ..ExperimentBudget::smoke() };
        let result = run_for(&[Vulnerability::V5MissingAccessFault], &budget);
        assert_eq!(result.rows.len(), 1);
        let row = &result.rows[0];
        assert!(row.thehuzz.detected(), "V5 is the paper's trivially detected bug");
        assert!(row.thehuzz.mean_tests <= 300.0);
        for (kind, cell) in &row.mabfuzz {
            assert!(cell.detected(), "{kind} should detect V5 within the cap");
        }
        let table = result.to_table().render();
        assert!(table.contains("V5"));
        assert!(table.contains("1252"));
    }

    #[test]
    fn speedup_is_baseline_over_algorithm() {
        let row = Table1Row {
            vulnerability: Vulnerability::V1FenceiDecode,
            thehuzz: DetectionCell { mean_tests: 600.0, detected_in: 3, repetitions: 3 },
            mabfuzz: vec![
                (BanditKind::Ucb1, DetectionCell { mean_tests: 46.0, detected_in: 3, repetitions: 3 }),
                (BanditKind::Exp3, DetectionCell { mean_tests: 0.0, detected_in: 0, repetitions: 3 }),
            ],
        };
        let speedup = row.speedup(BanditKind::Ucb1).unwrap();
        assert!((speedup - 600.0 / 46.0).abs() < 1e-9);
        assert_eq!(row.speedup(BanditKind::Exp3), None);
        assert_eq!(row.speedup(BanditKind::EpsilonGreedy), None);
    }

    #[test]
    fn best_speedup_scans_all_rows() {
        let result = Table1Result {
            rows: vec![Table1Row {
                vulnerability: Vulnerability::V6UnimplCsrJunk,
                thehuzz: DetectionCell { mean_tests: 100.0, detected_in: 1, repetitions: 1 },
                mabfuzz: vec![(
                    BanditKind::EpsilonGreedy,
                    DetectionCell { mean_tests: 10.0, detected_in: 1, repetitions: 1 },
                )],
            }],
            budget: ExperimentBudget::smoke(),
        };
        assert!((result.best_speedup().unwrap() - 10.0).abs() < 1e-9);
    }
}
