//! Command-line experiment harness.
//!
//! Regenerates every table and figure of the MABFuzz paper's evaluation
//! section on the simulated processor substrate:
//!
//! ```text
//! experiments table1   [--tests N] [--repeats R] [--seed S] [--vulns V1,V5]
//! experiments fig3     [--tests N] [--repeats R] [--seed S] [--cores cva6,rocket]
//! experiments fig4     [--tests N] [--repeats R] [--seed S] [--cores ...]
//! experiments ablation [--tests N] [--repeats R] [--seed S]
//! experiments all      [--tests N] [--repeats R] [--seed S]
//! ```
//!
//! With no arguments the default budget (2 000 coverage tests, 3 000-test
//! detection cap, 3 repetitions) is used — small enough for a laptop, large
//! enough for the paper's qualitative shapes to emerge.

use std::env;
use std::process::ExitCode;

use mabfuzz_bench::{ablation, fig3, fig4, table1, ExperimentBudget};
use proc_sim::{ProcessorKind, Vulnerability};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let options = match Options::parse(&args[1.min(args.len())..]) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    match command {
        "table1" => run_table1(&options),
        "fig3" => run_fig3(&options),
        "fig4" => run_fig4(&options),
        "ablation" => run_ablation(&options),
        "all" => {
            run_table1(&options);
            run_fig3(&options);
            run_fig4(&options);
            run_ablation(&options);
        }
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => {
            eprintln!("error: unknown command `{other}`");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

const USAGE: &str = "usage: experiments <table1|fig3|fig4|ablation|all> \
[--tests N] [--cap N] [--repeats R] [--seed S] [--cores a,b] [--vulns V1,V2]";

#[derive(Debug, Clone)]
struct Options {
    budget: ExperimentBudget,
    cores: Vec<ProcessorKind>,
    vulnerabilities: Vec<Vulnerability>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut budget = ExperimentBudget::default();
        let mut cores = ProcessorKind::ALL.to_vec();
        let mut vulnerabilities = Vulnerability::ALL.to_vec();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("flag `{flag}` expects a value"))
            };
            match flag.as_str() {
                "--tests" => {
                    budget.coverage_tests =
                        value()?.parse().map_err(|e| format!("--tests: {e}"))?;
                }
                "--cap" => {
                    budget.detection_cap = value()?.parse().map_err(|e| format!("--cap: {e}"))?;
                }
                "--repeats" => {
                    budget.repetitions = value()?.parse().map_err(|e| format!("--repeats: {e}"))?;
                }
                "--seed" => {
                    budget.base_seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                "--cores" => {
                    cores = value()?
                        .split(',')
                        .map(|name| {
                            ProcessorKind::parse(name).ok_or_else(|| format!("unknown core `{name}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "--vulns" => {
                    vulnerabilities = value()?
                        .split(',')
                        .map(|id| {
                            Vulnerability::parse(id)
                                .ok_or_else(|| format!("unknown vulnerability `{id}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(Options { budget, cores, vulnerabilities })
    }
}

fn run_table1(options: &Options) {
    println!("== Table I: vulnerability detection speedup vs. TheHuzz ==");
    println!(
        "(detection cap {} tests, {} repetitions, base seed {})\n",
        options.budget.detection_cap, options.budget.repetitions, options.budget.base_seed
    );
    let result = table1::run_for(&options.vulnerabilities, &options.budget);
    println!("{}", result.to_table());
    if let Some(best) = result.best_speedup() {
        println!("best speedup over TheHuzz: {best:.2}x\n");
    }
}

fn run_fig3(options: &Options) {
    println!("== Fig. 3: branch coverage vs. number of tests ==");
    println!(
        "({} tests per campaign, {} repetitions)\n",
        options.budget.coverage_tests, options.budget.repetitions
    );
    let result = fig3::run_for(&options.cores, &options.budget);
    for curves in &result.processors {
        println!(
            "-- {} ({} coverage points) --",
            curves.processor,
            curves.space_len
        );
        println!("{}", result.to_table(curves.processor, 12));
    }
}

fn run_fig4(options: &Options) {
    println!("== Fig. 4: coverage speedup and increment vs. TheHuzz ==");
    let fig3_result = fig3::run_for(&options.cores, &options.budget);
    let result = fig4::from_fig3(&fig3_result);
    println!("{}", result.to_table());
    if let Some(best) = result.best_speedup() {
        println!("best coverage speedup over TheHuzz: {best:.2}x\n");
    }
}

fn run_ablation(options: &Options) {
    println!("== Parameter ablations (UCB on Rocket) ==\n");
    let core = options.cores.first().copied().unwrap_or(ProcessorKind::Rocket);
    for sweep in [
        ablation::alpha_sweep(core, &options.budget),
        ablation::gamma_sweep(core, &options.budget),
        ablation::arms_sweep(core, &options.budget),
        ablation::reset_ablation(core, &options.budget),
    ] {
        println!("-- {} sweep on {} --", sweep.parameter, sweep.processor);
        println!("{}", sweep.to_table());
    }
}
