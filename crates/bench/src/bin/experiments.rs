//! Command-line experiment harness.
//!
//! Regenerates every table and figure of the MABFuzz paper's evaluation
//! section on the simulated processor substrate:
//!
//! ```text
//! experiments table1   [--tests N] [--repeats R] [--seed S] [--vulns V1,V5]
//! experiments fig3     [--tests N] [--repeats R] [--seed S] [--cores cva6,rocket]
//! experiments fig4     [--tests N] [--repeats R] [--seed S] [--cores ...]
//! experiments ablation [--tests N] [--repeats R] [--seed S]
//! experiments all      [--tests N] [--repeats R] [--seed S]
//! experiments run      [--spec file.json] [--events FILE] [...]
//! experiments analyze  [--spec file.json | --program FILE]
//! experiments serve    [--addr 127.0.0.1:PORT] [--workers N] [--max-queue N]
//! experiments dispatch <cmd> --workers host:port,host:port [...]
//! experiments fleet    --workers host:port,host:port [--interval-ms N] [--frames N]
//! ```
//!
//! With no arguments the default budget (2 000 coverage tests, 3 000-test
//! detection cap, 3 repetitions) is used — small enough for a laptop, large
//! enough for the paper's qualitative shapes to emerge.
//!
//! The experiment grid runs on all cores by default (`--parallel auto`);
//! `--parallel serial` reproduces the single-threaded reference run with
//! byte-identical results, and `--parallel N` pins the worker count.
//! `--json` switches the report from text tables to the deterministic JSON
//! renderers (one JSON document per experiment, one per line).
//!
//! `--shards N` (default: the `MABFUZZ_SHARDS` environment variable, else
//! off) additionally shards every MABFuzz campaign *internally*: each bandit
//! round simulates a fixed-size test batch across `N` worker shards with a
//! deterministic reduction, so the report is **byte-identical for every
//! `N`** — including `--shards 1` — while the wall clock drops on multi-core
//! machines. The grid's cell workers are divided by the shard count so both
//! parallelism layers compose under one thread budget. Note that sharded
//! mode (any `N`) is a *different deterministic campaign* than the default
//! serial mode: batching changes which RNG stream generates each test, so
//! compare sharded runs with sharded runs. `--shards off` restores the
//! legacy serial plan (the published, golden-pinned artefacts) even when
//! `MABFUZZ_SHARDS` is exported; a malformed `MABFUZZ_SHARDS` value is a
//! hard error, never a silent fallback.

use std::env;
use std::process::ExitCode;
use std::time::Duration;

use mabfuzz_bench::{
    ablation, fig3, fig4, json, table1, CellRunner, ExperimentBudget, LocalRunner, Parallelism,
    ShardPlan,
};
use mabfuzz::{
    json_value, BugSpec, Campaign, CampaignSpec, CampaignSummary, CoverageSignal, EventLog,
    PolicySpec, ProcessorSpec, ProgressMonitor,
};
use mabfuzz_service::{Client, Coordinator, FleetMonitor, RetryPolicy};
use proc_sim::{ProcessorKind, Vulnerability};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    if command == "run" {
        // The spec-driven single-campaign command has its own option set.
        return match run_single_campaign(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{RUN_USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "analyze" {
        // The static-analysis dump has its own (tiny) option set.
        return match run_analyze(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{ANALYZE_USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "serve" {
        // The campaign daemon has its own option set too.
        return match run_serve(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{SERVE_USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "dispatch" {
        // And so does the multi-node dispatch coordinator.
        return match run_dispatch(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{DISPATCH_USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "fleet" {
        // The live fleet dashboard.
        return match run_fleet(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{FLEET_USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    let options = match Options::parse(&args[1.min(args.len())..]) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let local = LocalRunner::new(options.parallelism);
    let result = match command {
        "table1" => run_table1(&options, &local),
        "fig3" => run_fig3(&options, &local),
        "fig4" => run_fig4(&options, &local),
        "ablation" => run_ablation(&options, &local),
        "all" => run_all(&options, &local),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            println!("{RUN_USAGE}");
            println!("{ANALYZE_USAGE}");
            println!("{SERVE_USAGE}");
            println!("{DISPATCH_USAGE}");
            println!("{FLEET_USAGE}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            eprintln!("{USAGE}");
            eprintln!("{RUN_USAGE}");
            eprintln!("{ANALYZE_USAGE}");
            eprintln!("{SERVE_USAGE}");
            eprintln!("{DISPATCH_USAGE}");
            eprintln!("{FLEET_USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Runs every experiment, reusing the Fig. 3 grid for Fig. 4.
fn run_all(options: &Options, runner: &dyn CellRunner) -> Result<(), String> {
    run_table1(options, runner)?;
    // Fig. 4 derives from the Fig. 3 campaigns, so the coverage grid
    // — the most expensive part of the run — is simulated once and
    // reported twice.
    let fig3_result = compute_fig3(options, runner)?;
    report_fig3(options, &fig3_result);
    print_fig4_banner(options);
    report_fig4(options, &fig4::from_fig3(&fig3_result));
    run_ablation(options, runner)
}

const USAGE: &str = "usage: experiments <table1|fig3|fig4|ablation|all> \
[--tests N] [--cap N] [--repeats R] [--seed S] [--cores a,b] [--vulns V1,V2] \
[--parallel auto|serial|N] [--serial] [--shards N|off] [--json]";

const RUN_USAGE: &str = "usage: experiments run [--spec file.json] \
[--algorithm NAME] [--core NAME] [--bugs none|native|V1..V7] [--tests N] \
[--seed S] [--shards N] [--batch N] [--coverage-signal point|edge] \
[--events FILE] [--progress] [--json]";

const ANALYZE_USAGE: &str = "usage: experiments analyze \
[--spec file.json | --program FILE]";

const SERVE_USAGE: &str = "usage: experiments serve [--addr 127.0.0.1:PORT] \
[--workers auto|N] [--ttl SECONDS] [--auth-token TOKEN] [--io-timeout-ms N|0] \
[--max-queue N]";

const FLEET_USAGE: &str = "usage: experiments fleet \
--workers host:port,host:port [--interval-ms N] [--frames N] \
[--auth-token TOKEN] [--timeout-ms N|0]";

const DISPATCH_USAGE: &str = "usage: experiments dispatch \
<all|table1|fig3|fig4|ablation> --workers host:port,host:port \
[--spec-grid FILE] [--auth-token TOKEN] [--attempts N] [--timeout-ms N] \
[--retire-threshold N] [--no-local-fallback] [grid flags: --tests --cap \
--repeats --seed --cores --vulns --shards --json ...]";

/// `experiments serve`: run the campaign service daemon
/// (`mabfuzz_service::CampaignServer`) — remote spec submission, live NDJSON
/// event streams, status/report queries and cancellation over plain HTTP.
///
/// `--addr` defaults to `127.0.0.1:0` (an ephemeral port); the bound address
/// is printed to stdout as `listening on HOST:PORT` before the accept loop
/// starts, so scripts can capture it. `--workers` sizes the campaign worker
/// pool and defaults to the same [`Parallelism`] auto thread budget the
/// experiment grid uses (one worker per available core); campaigns whose
/// specs request internal shards spawn those shard workers *inside* their
/// campaign worker, exactly like grid cells do.
///
/// The daemon runs until a client posts `/shutdown` (see the protocol
/// reference in the `mabfuzz_service` crate docs).
/// Daemon hardening flags (see the `mabfuzz_service` crate docs):
/// `--ttl SECONDS` auto-evicts terminal campaigns that long after they
/// finish; `--auth-token TOKEN` requires `Authorization: Bearer TOKEN` on
/// everything except `GET /healthz`; `--io-timeout-ms N` bounds every
/// connection's socket reads/writes (default 30 000, `0` disables);
/// `--max-queue N` bounds the job queue to `N` waiting campaigns —
/// over-capacity submissions are refused with `429 Too Many Requests` and a
/// retryable error body, which the dispatch coordinator absorbs by backing
/// off and resubmitting.
fn run_serve(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:0".to_owned();
    let mut workers = Parallelism::default();
    let mut ttl: Option<std::time::Duration> = None;
    let mut auth_token: Option<String> = None;
    let mut io_timeout = Some(mabfuzz_service::DEFAULT_IO_TIMEOUT);
    let mut max_queue: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next().cloned().ok_or_else(|| format!("flag `{flag}` expects a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value()?,
            "--workers" => {
                let text = value()?;
                workers = Parallelism::parse(&text).ok_or_else(|| {
                    format!("--workers: expected auto, serial or a thread count, got `{text}`")
                })?;
            }
            "--ttl" => {
                let seconds: u64 = value()?.parse().map_err(|e| format!("--ttl: {e}"))?;
                ttl = Some(std::time::Duration::from_secs(seconds));
            }
            "--auth-token" => auth_token = Some(value()?),
            "--io-timeout-ms" => {
                let millis: u64 =
                    value()?.parse().map_err(|e| format!("--io-timeout-ms: {e}"))?;
                io_timeout =
                    (millis > 0).then(|| std::time::Duration::from_millis(millis));
            }
            "--max-queue" => {
                max_queue =
                    Some(value()?.parse().map_err(|e| format!("--max-queue: {e}"))?);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let server = mabfuzz_service::CampaignServer::bind(&addr, workers.workers())
        .map_err(|error| format!("--addr {addr}: {error}"))?
        .with_io_timeout(io_timeout)
        .with_auth_token(auth_token)
        .with_ttl(ttl)
        .with_max_queue(max_queue);
    println!("listening on {} ({} campaign workers)", server.local_addr(), workers.workers());
    // Scripts block on this line to learn the ephemeral port; make sure it
    // is out before the accept loop parks the thread.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    server.serve().map_err(|error| format!("serve: {error}"))
}

/// `experiments run`: execute one campaign described by a JSON
/// [`CampaignSpec`] (with optional command-line overrides) through the
/// `Campaign` session type, and report it as text or one deterministic JSON
/// document.
///
/// `--events FILE` additionally streams the campaign's full observer event
/// stream (baseline and MABFuzz campaigns alike) to `FILE` as JSONL — one
/// event per line, in deterministic fold order, byte-identical for every
/// `--shards N` at a fixed batch size. `--progress` attaches a live stderr
/// progress monitor (tests/sec, coverage %, per-arm pulls, detections);
/// stdout artefacts stay byte-identical either way.
fn run_single_campaign(args: &[String]) -> Result<(), String> {
    // First pass: the spec file (if any) is the base, regardless of where
    // `--spec` sits among the flags — every other flag is an *override* and
    // must win over the file even when written before it.
    let mut spec = CampaignSpec::default();
    let mut spec_seen = false;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--spec" {
            if spec_seen {
                return Err("--spec given more than once".to_owned());
            }
            spec_seen = true;
            let path =
                iter.next().cloned().ok_or_else(|| format!("flag `{flag}` expects a value"))?;
            let text = std::fs::read_to_string(&path)
                .map_err(|error| format!("--spec {path}: {error}"))?;
            spec = CampaignSpec::from_json(&text)
                .map_err(|error| format!("--spec {path}: {error}"))?;
        }
    }

    let mut json_output = false;
    let mut events_path: Option<String> = None;
    let mut progress = false;
    // Deferred until after the loop so `--bugs` composes with `--core`
    // regardless of flag order.
    let mut bugs_override: Option<BugSpec> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next().cloned().ok_or_else(|| format!("flag `{flag}` expects a value"))
        };
        match flag.as_str() {
            "--spec" => {
                let _ = value()?; // consumed in the first pass
            }
            // A typo'd algorithm fails loudly with the full list of valid
            // policies (built-ins and registered customs) instead of
            // silently defaulting.
            "--algorithm" => spec.policy = PolicySpec::parse(&value()?).map_err(|e| e.to_string())?,
            "--core" => {
                let name = value()?;
                let core = ProcessorKind::parse(&name)
                    .ok_or_else(|| format!("unknown core `{name}`"))?;
                let bugs = spec.processor.map_or(BugSpec::Native, |p| p.bugs);
                spec.processor = Some(ProcessorSpec { core, bugs });
            }
            "--bugs" => {
                bugs_override = Some(BugSpec::parse(&value()?).map_err(|e| e.to_string())?);
            }
            "--tests" => {
                spec.campaign.max_tests = value()?.parse().map_err(|e| format!("--tests: {e}"))?
            }
            "--seed" => {
                spec.rng_seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--shards" => {
                spec.shards = value()?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--batch" => {
                spec.batch_size = value()?.parse().map_err(|e| format!("--batch: {e}"))?
            }
            "--coverage-signal" => {
                let name = value()?;
                spec.coverage_signal = CoverageSignal::parse(&name).ok_or_else(|| {
                    format!("--coverage-signal: expected point or edge, got `{name}`")
                })?;
            }
            "--events" => events_path = Some(value()?),
            "--progress" => progress = true,
            "--json" => json_output = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if let Some(bugs) = bugs_override {
        let processor = spec
            .processor
            .as_mut()
            .ok_or("--bugs needs a processor (--core or a spec with one)")?;
        processor.bugs = bugs;
    }
    let mut campaign = Campaign::from_spec(&spec).map_err(|error| match error {
        // The library message suggests a Rust API; at the CLI the fix is a
        // flag or a spec-file section.
        mabfuzz::SpecError::MissingProcessor => {
            "no processor to run against: pass --core NAME (optionally --bugs ...) \
             or a --spec file with a \"processor\" section"
                .to_owned()
        }
        other => other.to_string(),
    })?;
    // Observer consumers: the JSONL event sink (deterministic, golden-pinned
    // bytes on its own file) and the live stderr progress monitor. Neither
    // can perturb the campaign, so the stdout report stays byte-identical
    // with or without them.
    let events_health = match &events_path {
        Some(path) => {
            let log = EventLog::create(path).map_err(|error| format!("--events {path}: {error}"))?;
            let health = log.health();
            campaign.attach_observer(Box::new(log));
            Some(health)
        }
        None => None,
    };
    if progress {
        let interval = (spec.campaign.max_tests / 20).clamp(1, ProgressMonitor::DEFAULT_INTERVAL);
        let monitor = ProgressMonitor::new(campaign.coverage_space_len()).with_interval(interval);
        campaign.attach_observer(Box::new(monitor));
    }
    let outcome = campaign.execute();
    if let (Some(health), Some(path)) = (events_health, &events_path) {
        if health.failed() {
            return Err(format!(
                "--events {path}: the event stream was truncated by a write error"
            ));
        }
    }
    if json_output {
        println!("{}", json::campaign(&spec, &outcome));
        return Ok(());
    }
    println!("== Campaign: {} ==", outcome.stats.label());
    println!("(spec policy {}, seed {}, {} shard(s) x {} test(s)/round)\n", spec.policy, spec.rng_seed, spec.shards, spec.batch_size);
    println!("{}", outcome.stats);
    if let Some(first) = outcome.stats.first_detection() {
        println!("first detection after {first} tests");
    }
    if !outcome.arms.is_empty() {
        println!("total arm resets: {}", outcome.total_resets);
    }
    Ok(())
}

/// `experiments analyze`: dump the static [`ProgramFacts`] of seed programs
/// as one strict JSON document on stdout.
///
/// With `--spec file.json` (or no flags: the default spec) the generator
/// stream of the spec is replayed and every initial seed is analyzed — the
/// exact programs a campaign's arms would start from. With `--program FILE`
/// one raw RV64I text image is analyzed instead; words that fail to decode
/// are reported as statically-illegal slots, never silently dropped.
///
/// [`ProgramFacts`]: mabfuzz_bench::analyze
fn run_analyze(args: &[String]) -> Result<(), String> {
    let mut spec_path: Option<String> = None;
    let mut program_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next().cloned().ok_or_else(|| format!("flag `{flag}` expects a value"))
        };
        match flag.as_str() {
            "--spec" => spec_path = Some(value()?),
            "--program" => program_path = Some(value()?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if spec_path.is_some() && program_path.is_some() {
        return Err("--spec and --program are mutually exclusive".to_owned());
    }
    if let Some(path) = program_path {
        let bytes =
            std::fs::read(&path).map_err(|error| format!("--program {path}: {error}"))?;
        println!("{}", mabfuzz_bench::analyze::program_report(&bytes));
        return Ok(());
    }
    let spec = match spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|error| format!("--spec {path}: {error}"))?;
            CampaignSpec::from_json(&text).map_err(|error| format!("--spec {path}: {error}"))?
        }
        None => CampaignSpec::default(),
    };
    spec.validate().map_err(|error| error.to_string())?;
    println!("{}", mabfuzz_bench::analyze::spec_report(&spec));
    Ok(())
}

#[derive(Debug, Clone)]
struct Options {
    budget: ExperimentBudget,
    cores: Vec<ProcessorKind>,
    vulnerabilities: Vec<Vulnerability>,
    parallelism: Parallelism,
    plan: ShardPlan,
    json: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut budget = ExperimentBudget::default();
        let mut cores = ProcessorKind::ALL.to_vec();
        let mut vulnerabilities = Vulnerability::ALL.to_vec();
        let mut parallelism = Parallelism::default();
        let mut plan = ShardPlan::from_env()?.unwrap_or_else(ShardPlan::serial);
        let mut json = false;
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("flag `{flag}` expects a value"))
            };
            match flag.as_str() {
                "--tests" => {
                    budget.coverage_tests =
                        value()?.parse().map_err(|e| format!("--tests: {e}"))?;
                }
                "--cap" => {
                    budget.detection_cap = value()?.parse().map_err(|e| format!("--cap: {e}"))?;
                }
                "--repeats" => {
                    budget.repetitions = value()?.parse().map_err(|e| format!("--repeats: {e}"))?;
                }
                "--seed" => {
                    budget.base_seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                "--cores" => {
                    cores = value()?
                        .split(',')
                        .map(|name| {
                            ProcessorKind::parse(name).ok_or_else(|| format!("unknown core `{name}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "--vulns" => {
                    vulnerabilities = value()?
                        .split(',')
                        .map(|id| {
                            Vulnerability::parse(id)
                                .ok_or_else(|| format!("unknown vulnerability `{id}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "--parallel" => {
                    let text = value()?;
                    parallelism = Parallelism::parse(&text)
                        .ok_or_else(|| format!("--parallel: expected auto, serial or a thread count, got `{text}`"))?;
                }
                "--serial" => parallelism = Parallelism::Serial,
                "--shards" => {
                    let text = value()?;
                    plan = match text.trim().to_ascii_lowercase().as_str() {
                        // The escape hatch back to the legacy serial plan —
                        // the published artefacts — even when MABFUZZ_SHARDS
                        // is exported in the environment.
                        "off" | "serial" => ShardPlan::serial(),
                        _ => {
                            let shards: usize =
                                text.parse().map_err(|e| format!("--shards: {e}"))?;
                            if shards == 0 {
                                return Err("--shards: expected at least one shard (or `off`)"
                                    .to_owned());
                            }
                            ShardPlan::sharded(shards)
                        }
                    };
                }
                "--json" => json = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        // Cell- and shard-level parallelism compose under one thread
        // budget: a grid of N-shard campaigns gets workers/N cell workers.
        parallelism = parallelism.with_shard_budget(plan.shards());
        Ok(Options { budget, cores, vulnerabilities, parallelism, plan, json })
    }
}

fn run_table1(options: &Options, runner: &dyn CellRunner) -> Result<(), String> {
    if !options.json {
        // Header first: the default budget simulates for a while, and the
        // banner doubles as the progress cue.
        println!("== Table I: vulnerability detection speedup vs. TheHuzz ==");
        println!(
            "(detection cap {} tests, {} repetitions, base seed {}, {})\n",
            options.budget.detection_cap,
            options.budget.repetitions,
            options.budget.base_seed,
            options.parallelism
        );
    }
    let result =
        table1::run_for_on(&options.vulnerabilities, &options.budget, &options.plan, runner)?;
    if options.json {
        println!("{}", json::table1(&result));
        return Ok(());
    }
    println!("{}", result.to_table());
    if let Some(best) = result.best_speedup() {
        println!("best speedup over TheHuzz: {best:.2}x\n");
    }
    Ok(())
}

fn compute_fig3(options: &Options, runner: &dyn CellRunner) -> Result<fig3::Fig3Result, String> {
    if !options.json {
        println!("== Fig. 3: branch coverage vs. number of tests ==");
        println!(
            "({} tests per campaign, {} repetitions, {})\n",
            options.budget.coverage_tests, options.budget.repetitions, options.parallelism
        );
    }
    fig3::run_for_on(&options.cores, &options.budget, &options.plan, runner)
}

fn report_fig3(options: &Options, result: &fig3::Fig3Result) {
    if options.json {
        println!("{}", json::fig3(result));
        return;
    }
    for curves in &result.processors {
        println!(
            "-- {} ({} coverage points) --",
            curves.processor,
            curves.space_len
        );
        println!("{}", result.to_table(curves.processor, 12));
    }
}

fn run_fig3(options: &Options, runner: &dyn CellRunner) -> Result<(), String> {
    let result = compute_fig3(options, runner)?;
    report_fig3(options, &result);
    Ok(())
}

fn print_fig4_banner(options: &Options) {
    if !options.json {
        println!("== Fig. 4: coverage speedup and increment vs. TheHuzz ==");
    }
}

fn report_fig4(options: &Options, result: &fig4::Fig4Result) {
    if options.json {
        println!("{}", json::fig4(result));
        return;
    }
    println!("{}", result.to_table());
    if let Some(best) = result.best_speedup() {
        println!("best coverage speedup over TheHuzz: {best:.2}x\n");
    }
}

fn run_fig4(options: &Options, runner: &dyn CellRunner) -> Result<(), String> {
    // Banner before the grid: the coverage campaigns are the long part, and
    // the banner doubles as the progress cue.
    print_fig4_banner(options);
    let fig3_result = fig3::run_for_on(&options.cores, &options.budget, &options.plan, runner)?;
    report_fig4(options, &fig4::from_fig3(&fig3_result));
    Ok(())
}

fn run_ablation(options: &Options, runner: &dyn CellRunner) -> Result<(), String> {
    let core = options.cores.first().copied().unwrap_or(ProcessorKind::Rocket);
    if !options.json {
        println!("== Parameter ablations (UCB on Rocket) ==\n");
    }
    let sweeps = [
        ablation::alpha_sweep_on(core, &options.budget, &options.plan, runner)?,
        ablation::gamma_sweep_on(core, &options.budget, &options.plan, runner)?,
        ablation::arms_sweep_on(core, &options.budget, &options.plan, runner)?,
        ablation::reset_ablation_on(core, &options.budget, &options.plan, runner)?,
    ];
    if options.json {
        println!("{}", json::ablations(&sweeps));
        return Ok(());
    }
    for sweep in sweeps {
        println!("-- {} sweep on {} --", sweep.parameter, sweep.processor);
        println!("{}", sweep.to_table());
    }
    Ok(())
}

/// `experiments dispatch`: run an experiment grid (or an explicit spec list)
/// with every campaign farmed out to remote `experiments serve` workers
/// through the fault-tolerant [`Coordinator`].
///
/// `--workers` takes a comma-separated list of `host:port` daemon addresses
/// and is required. Campaigns are retried with capped exponential backoff
/// (`--attempts`, default 4), every request carries a socket deadline
/// (`--timeout-ms`, default 30 000; `0` disables), workers that keep failing
/// are quarantined and retired (`--retire-threshold`), and campaigns lost
/// in flight are reassigned with their replayed event-stream prefix checked
/// byte-for-byte against the first attempt. When every worker is lost the
/// coordinator finishes the remaining campaigns locally unless
/// `--no-local-fallback` is given, in which case dispatch fails loudly.
///
/// The experiment artefacts on stdout are byte-identical to a local
/// `experiments <cmd>` run with the same grid flags; coordinator diagnostics
/// (reassignments, fallback runs) go to stderr.
///
/// `--spec-grid FILE` bypasses the named experiments: the file holds
/// self-contained campaign specs (a JSON array or one JSON object per line)
/// and the output is one report document per spec, in input order.
fn run_dispatch(args: &[String]) -> Result<(), String> {
    // Split coordinator flags from grid flags: the leading non-flag token is
    // the experiment command, dispatch-specific flags are consumed here, and
    // everything else passes through to `Options::parse` in order.
    let mut command = "all".to_owned();
    let mut workers_arg: Option<String> = None;
    let mut spec_grid: Option<String> = None;
    let mut auth_token: Option<String> = None;
    let mut attempts: u32 = RetryPolicy::default().max_attempts;
    let mut timeout_ms: u64 = 30_000;
    let mut retire_threshold: Option<u32> = None;
    let mut local_fallback = true;
    let mut grid_args: Vec<String> = Vec::new();
    let mut iter = args.iter();
    let mut first = true;
    while let Some(arg) = iter.next() {
        if first && !arg.starts_with("--") {
            command = arg.clone();
            first = false;
            continue;
        }
        first = false;
        let mut value = || {
            iter.next().cloned().ok_or_else(|| format!("flag `{arg}` expects a value"))
        };
        match arg.as_str() {
            "--workers" => workers_arg = Some(value()?),
            "--spec-grid" => spec_grid = Some(value()?),
            "--auth-token" => auth_token = Some(value()?),
            "--attempts" => {
                attempts = value()?.parse().map_err(|e| format!("--attempts: {e}"))?;
                if attempts == 0 {
                    return Err("--attempts: expected at least one attempt".to_owned());
                }
            }
            "--timeout-ms" => {
                timeout_ms = value()?.parse().map_err(|e| format!("--timeout-ms: {e}"))?;
            }
            "--retire-threshold" => {
                retire_threshold =
                    Some(value()?.parse().map_err(|e| format!("--retire-threshold: {e}"))?);
            }
            "--no-local-fallback" => local_fallback = false,
            _ => grid_args.push(arg.clone()),
        }
    }

    let workers_arg = workers_arg.ok_or("--workers host:port[,host:port...] is required")?;
    let deadline = (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms));
    let mut clients = Vec::new();
    for addr in workers_arg.split(',').map(str::trim).filter(|a| !a.is_empty()) {
        let mut client = Client::connect(addr)
            .map_err(|error| format!("--workers {addr}: {error}"))?
            .with_deadline(deadline);
        if let Some(token) = &auth_token {
            client = client.with_auth_token(token.clone());
        }
        clients.push(client);
    }
    if clients.is_empty() {
        return Err("--workers: expected at least one host:port address".to_owned());
    }

    let policy = RetryPolicy { max_attempts: attempts, ..RetryPolicy::default() };
    let mut coordinator = Coordinator::new(clients)
        .with_retry_policy(policy)
        .with_local_fallback(local_fallback)
        .with_verbose(true);
    if let Some(threshold) = retire_threshold {
        coordinator = coordinator.with_retire_threshold(threshold);
    }

    if let Some(path) = spec_grid {
        if !grid_args.is_empty() {
            return Err(format!(
                "--spec-grid does not combine with grid flags (got `{}`)",
                grid_args.join(" ")
            ));
        }
        dispatch_spec_grid(&coordinator, &path)?;
        report_dispatch_stats(&coordinator);
        return Ok(());
    }

    let options = Options::parse(&grid_args)?;
    let remote = RemoteRunner { coordinator: &coordinator };
    let result = match command.as_str() {
        "table1" => run_table1(&options, &remote),
        "fig3" => run_fig3(&options, &remote),
        "fig4" => run_fig4(&options, &remote),
        "ablation" => run_ablation(&options, &remote),
        "all" => run_all(&options, &remote),
        other => Err(format!("unknown dispatch command `{other}`")),
    };
    report_dispatch_stats(&coordinator);
    result
}

/// `experiments fleet`: a live stderr dashboard over a fleet of
/// `experiments serve` workers.
///
/// Renders one [`FleetMonitor`] line per worker per frame: queue depth
/// against the worker's `--max-queue` bound, campaigns running, live
/// tests/sec and coverage % folded from the worker's NDJSON event feed,
/// and the same healthy → quarantined → retired lifecycle the dispatch
/// coordinator tracks from `GET /healthz` heartbeats. `--interval-ms` sets
/// the frame rate (default 1 000); `--frames N` renders exactly `N` frames
/// and exits (what CI's render smoke uses); `--timeout-ms` bounds each
/// probe's socket I/O (default 5 000, `0` disables); `--auth-token` is
/// needed for the event feeds when the daemons run locked (the `/healthz`
/// probe itself is auth-exempt).
fn run_fleet(args: &[String]) -> Result<(), String> {
    let mut workers_arg: Option<String> = None;
    let mut interval_ms: u64 = 1_000;
    let mut frames: Option<u64> = None;
    let mut auth_token: Option<String> = None;
    let mut timeout_ms: u64 = 5_000;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next().cloned().ok_or_else(|| format!("flag `{flag}` expects a value"))
        };
        match flag.as_str() {
            "--workers" => workers_arg = Some(value()?),
            "--interval-ms" => {
                interval_ms = value()?.parse().map_err(|e| format!("--interval-ms: {e}"))?;
            }
            "--frames" => {
                let count: u64 = value()?.parse().map_err(|e| format!("--frames: {e}"))?;
                if count == 0 {
                    return Err("--frames: expected at least one frame".to_owned());
                }
                frames = Some(count);
            }
            "--auth-token" => auth_token = Some(value()?),
            "--timeout-ms" => {
                timeout_ms = value()?.parse().map_err(|e| format!("--timeout-ms: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let workers_arg = workers_arg.ok_or("--workers host:port[,host:port...] is required")?;
    let deadline = (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms));
    let mut workers = Vec::new();
    for addr in workers_arg.split(',').map(str::trim).filter(|a| !a.is_empty()) {
        let mut client = Client::connect(addr)
            .map_err(|error| format!("--workers {addr}: {error}"))?
            .with_deadline(deadline);
        if let Some(token) = &auth_token {
            client = client.with_auth_token(token.clone());
        }
        workers.push((addr.to_owned(), client));
    }
    if workers.is_empty() {
        return Err("--workers: expected at least one host:port address".to_owned());
    }
    let mut monitor =
        FleetMonitor::new(workers).with_interval(Duration::from_millis(interval_ms));
    monitor
        .run(frames, &mut std::io::stderr())
        .map_err(|error| format!("fleet dashboard: {error}"))
}

/// Adapts the fault-tolerant [`Coordinator`] to the experiment grid's
/// [`CellRunner`] seam: each grid cell becomes one dispatched campaign, and
/// the summaries come back in spec order so the reductions fold exactly as
/// they do locally.
struct RemoteRunner<'a> {
    coordinator: &'a Coordinator,
}

impl CellRunner for RemoteRunner<'_> {
    fn run_cells(&self, specs: &[CampaignSpec]) -> Result<Vec<CampaignSummary>, String> {
        let outcomes = self.coordinator.run(specs).map_err(|error| error.to_string())?;
        Ok(outcomes.into_iter().map(|outcome| outcome.summary).collect())
    }
}

/// Dispatches an explicit spec list (JSON array or NDJSON file) and prints
/// one report document per spec, in input order.
fn dispatch_spec_grid(coordinator: &Coordinator, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("--spec-grid {path}: {error}"))?;
    let specs =
        parse_spec_grid(&text).map_err(|error| format!("--spec-grid {path}: {error}"))?;
    if specs.is_empty() {
        return Err(format!("--spec-grid {path}: no campaign specs found"));
    }
    let outcomes = coordinator.run(&specs).map_err(|error| error.to_string())?;
    for outcome in &outcomes {
        println!("{}", outcome.report);
    }
    Ok(())
}

/// Parses a spec-grid file: a JSON array of campaign specs, or NDJSON with
/// one spec object per line (blank lines ignored).
fn parse_spec_grid(text: &str) -> Result<Vec<CampaignSpec>, String> {
    if text.trim_start().starts_with('[') {
        let value = json_value::parse(text)?;
        let entries = value.as_array("spec grid").map_err(|e| e.to_string())?;
        return entries
            .iter()
            .enumerate()
            .map(|(index, entry)| {
                CampaignSpec::from_value(entry).map_err(|e| format!("spec #{index}: {e}"))
            })
            .collect();
    }
    text.lines()
        .map(str::trim)
        .filter(|line| !line.is_empty())
        .enumerate()
        .map(|(index, line)| {
            CampaignSpec::from_json(line).map_err(|e| format!("spec #{index}: {e}"))
        })
        .collect()
}

/// Prints the coordinator's fault-handling tally to stderr (stdout carries
/// only the deterministic experiment artefacts).
fn report_dispatch_stats(coordinator: &Coordinator) {
    let reassignments = coordinator.reassignments();
    let local_runs = coordinator.local_runs();
    if reassignments > 0 || local_runs > 0 {
        eprintln!(
            "dispatch: {reassignments} reassignment(s), {local_runs} local fallback run(s)"
        );
    }
}
