//! Fig. 4 — coverage speedup (×) and coverage increment (%) of each MABFuzz
//! algorithm over the TheHuzz baseline.

use proc_sim::ProcessorKind;
use serde::{Deserialize, Serialize};

use crate::fig3::Fig3Result;
use crate::report::{format_speedup, TextTable};
use crate::{ExperimentBudget, FuzzerKind, Parallelism};

/// Fig. 4 numbers for one (processor, algorithm) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupCell {
    /// The MABFuzz variant.
    pub fuzzer: FuzzerKind,
    /// Coverage speedup: tests the baseline needed to reach its own final
    /// coverage divided by the tests this variant needed to reach the same
    /// coverage. `None` when the variant never reached it within the budget.
    pub coverage_speedup: Option<f64>,
    /// Coverage increment in percent:
    /// `(variant final − baseline final) / baseline final × 100`.
    pub coverage_increment_percent: f64,
}

/// Fig. 4 numbers for one processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorSpeedups {
    /// The processor.
    pub processor: ProcessorKind,
    /// The baseline's final coverage (the target the speedup is measured
    /// against).
    pub baseline_final_coverage: usize,
    /// Tests the baseline needed to reach its own final coverage.
    pub baseline_tests_to_final: u64,
    /// One cell per MABFuzz variant.
    pub cells: Vec<SpeedupCell>,
}

/// The full Fig. 4 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Per-processor speedups, in paper order.
    pub processors: Vec<ProcessorSpeedups>,
    /// The budget the underlying coverage campaigns ran under.
    pub budget: ExperimentBudget,
}

impl Fig4Result {
    /// Returns the speedups of one processor.
    pub fn processor(&self, kind: ProcessorKind) -> Option<&ProcessorSpeedups> {
        self.processors.iter().find(|p| p.processor == kind)
    }

    /// Returns the largest coverage speedup across all processors and
    /// algorithms (the paper's headline "up to 5× faster coverage").
    pub fn best_speedup(&self) -> Option<f64> {
        self.processors
            .iter()
            .flat_map(|p| p.cells.iter().filter_map(|c| c.coverage_speedup))
            .fold(None, |best, s| Some(best.map_or(s, |b: f64| b.max(s))))
    }

    /// Renders the figure's data as a table (one row per processor ×
    /// algorithm).
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(&[
            "Processor",
            "Algorithm",
            "Coverage speedup",
            "Coverage increment (%)",
        ]);
        for processor in &self.processors {
            for cell in &processor.cells {
                table.row(vec![
                    processor.processor.name().to_owned(),
                    cell.fuzzer.name().into_owned(),
                    format_speedup(cell.coverage_speedup),
                    format!("{:+.2}", cell.coverage_increment_percent),
                ]);
            }
        }
        table
    }
}

/// Derives the Fig. 4 metrics from an already-run Fig. 3 experiment.
pub fn from_fig3(fig3: &Fig3Result) -> Fig4Result {
    let processors = fig3
        .processors
        .iter()
        .map(|curves| {
            let baseline = curves
                .curve(FuzzerKind::TheHuzz)
                .expect("the baseline curve is always present");
            let baseline_final = baseline.final_coverage();
            let baseline_tests = baseline.tests_to_reach(baseline_final).unwrap_or(0);
            let cells = FuzzerKind::MABFUZZ
                .iter()
                .map(|&fuzzer| {
                    let curve = curves.curve(fuzzer).expect("every fuzzer has a curve");
                    let speedup = curve
                        .tests_to_reach(baseline_final)
                        .filter(|tests| *tests > 0)
                        .map(|tests| baseline_tests as f64 / tests as f64);
                    let increment = if baseline_final == 0 {
                        0.0
                    } else {
                        (curve.final_coverage() as f64 - baseline_final as f64)
                            / baseline_final as f64
                            * 100.0
                    };
                    SpeedupCell {
                        fuzzer,
                        coverage_speedup: speedup,
                        coverage_increment_percent: increment,
                    }
                })
                .collect();
            ProcessorSpeedups {
                processor: curves.processor,
                baseline_final_coverage: baseline_final,
                baseline_tests_to_final: baseline_tests,
                cells,
            }
        })
        .collect();
    Fig4Result { processors, budget: fig3.budget.clone() }
}

/// Runs the coverage campaigns and derives the Fig. 4 metrics in one call.
pub fn run_for(processors: &[ProcessorKind], budget: &ExperimentBudget) -> Fig4Result {
    from_fig3(&crate::fig3::run_for(processors, budget))
}

/// Runs the coverage campaigns with explicit parallelism and derives the
/// Fig. 4 metrics.
pub fn run_for_with(
    processors: &[ProcessorKind],
    budget: &ExperimentBudget,
    parallelism: Parallelism,
) -> Fig4Result {
    from_fig3(&crate::fig3::run_for_with(processors, budget, parallelism))
}

/// Runs the full Fig. 4 experiment (all three processors).
pub fn run(budget: &ExperimentBudget) -> Fig4Result {
    from_fig3(&crate::fig3::run(budget))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig3;

    #[test]
    fn metrics_derive_from_fig3_curves() {
        let budget = ExperimentBudget::smoke();
        let fig3_result = fig3::run_for(&[ProcessorKind::Rocket], &budget);
        let fig4_result = from_fig3(&fig3_result);
        let rocket = fig4_result.processor(ProcessorKind::Rocket).expect("rocket row");
        assert_eq!(rocket.cells.len(), 3);
        assert!(rocket.baseline_final_coverage > 0);
        for cell in &rocket.cells {
            // The speedup may be None (variant never caught up within a tiny
            // smoke budget) but the increment is always defined.
            assert!(cell.coverage_increment_percent.is_finite());
        }
        let table = fig4_result.to_table();
        assert_eq!(table.len(), 3);
        assert!(table.render().contains("rocket"));
    }

    #[test]
    fn speedup_is_relative_to_the_baselines_own_final_coverage() {
        // Hand-build curves: baseline reaches 100 points after 80 tests,
        // the variant reaches 100 points after 20 tests and 120 by the end.
        use coverage::CoverageSeries;
        let mut baseline = CoverageSeries::new("TheHuzz on rocket");
        baseline.record(40, 60);
        baseline.record(80, 100);
        baseline.record(100, 100);
        let mut variant = CoverageSeries::new("MABFuzz: UCB on rocket");
        variant.record(20, 100);
        variant.record(100, 120);
        let curves = fig3::ProcessorCurves {
            processor: ProcessorKind::Rocket,
            space_len: 500,
            curves: vec![
                (FuzzerKind::TheHuzz, baseline),
                (FuzzerKind::MabFuzz(mab::BanditKind::EpsilonGreedy), variant.clone()),
                (FuzzerKind::MabFuzz(mab::BanditKind::Ucb1), variant.clone()),
                (FuzzerKind::MabFuzz(mab::BanditKind::Exp3), variant),
            ],
        };
        let fig3_result = Fig3Result {
            processors: vec![curves],
            budget: ExperimentBudget::smoke(),
        };
        let fig4_result = from_fig3(&fig3_result);
        let rocket = fig4_result.processor(ProcessorKind::Rocket).unwrap();
        assert_eq!(rocket.baseline_final_coverage, 100);
        assert_eq!(rocket.baseline_tests_to_final, 80);
        let cell = &rocket.cells[1];
        assert!((cell.coverage_speedup.unwrap() - 4.0).abs() < 1e-9);
        assert!((cell.coverage_increment_percent - 20.0).abs() < 1e-9);
        assert!((fig4_result.best_speedup().unwrap() - 4.0).abs() < 1e-9);
    }
}
