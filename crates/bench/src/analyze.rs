//! `experiments analyze`: static-analysis dumps of seed programs.
//!
//! Renders the [`ProgramFacts`] of each seed a
//! campaign spec would generate — or of one raw text image — as one strict
//! JSON document. Like every other experiment artefact, rendering is by hand
//! so the bytes are deterministic: the integration tests pin them against a
//! golden file, and the `experiments analyze` subcommand emits exactly the
//! same bytes.
//!
//! Seed derivation mirrors the campaign loop: a fresh
//! [`SeedGenerator`] over the spec's generator
//! config, driven by `StdRng::seed_from_u64(spec.rng_seed)`, producing
//! `spec.campaign.num_seeds` programs — the exact arm seeds a Fig. 2
//! campaign would start from (arm counts aside, the generator stream is the
//! same).

use analysis::ProgramFacts;
use fuzzer::SeedGenerator;
use mabfuzz::CampaignSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use riscv::Program;

/// Renders the static facts of every seed the spec's generator stream
/// produces, as one JSON document.
pub fn spec_report(spec: &CampaignSpec) -> String {
    let mut generator = SeedGenerator::new(spec.campaign.generator.clone());
    let mut rng = StdRng::seed_from_u64(spec.rng_seed);
    let count = spec.campaign.num_seeds;
    let seeds: Vec<String> = generator
        .generate_seeds(&mut rng, count)
        .iter()
        .enumerate()
        .map(|(index, seed)| {
            let facts = ProgramFacts::analyze(&seed.program.text_bytes());
            format!(
                "{{\"index\":{index},\"instructions\":{},\"facts\":{}}}",
                seed.program.instrs().len(),
                facts.to_json()
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"analyze\",\"rng_seed\":{},\"num_seeds\":{},\"seeds\":[{}]}}",
        spec.rng_seed,
        count,
        seeds.join(",")
    )
}

/// Renders the static facts of one raw text image (little-endian RV64I
/// words, as written by [`Program::text_bytes`]) as one JSON document.
///
/// Words that fail to decode stay in the image as statically-illegal slots
/// (see [`Program::from_text_bytes`]); their count is reported alongside the
/// facts so corrupt images are visible in the artefact.
pub fn program_report(bytes: &[u8]) -> String {
    let (program, undecodable) = Program::from_text_bytes(bytes);
    let facts = ProgramFacts::analyze(&program.text_bytes());
    format!(
        "{{\"experiment\":\"analyze\",\"bytes\":{},\"undecodable_words\":{},\"facts\":{}}}",
        bytes.len(),
        undecodable,
        facts.to_json()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_report_is_deterministic_and_sized_by_the_spec() {
        let spec = CampaignSpec::builder().arms(3).rng_seed(11).build().unwrap();
        let report = spec_report(&spec);
        assert_eq!(report, spec_report(&spec), "rendering is deterministic");
        assert!(report.starts_with("{\"experiment\":\"analyze\",\"rng_seed\":11,\"num_seeds\":3,"));
        assert_eq!(report.matches("\"index\":").count(), 3, "one entry per seed");
        assert!(report.contains("\"block_count\":"), "facts are embedded");
    }

    #[test]
    fn different_rng_seeds_change_the_analyzed_programs() {
        let spec = |seed: u64| CampaignSpec::builder().arms(2).rng_seed(seed).build().unwrap();
        assert_ne!(spec_report(&spec(1)), spec_report(&spec(2)));
    }

    #[test]
    fn program_report_round_trips_a_text_image() {
        use riscv::{Gpr, Instr, Op};
        let program = Program::from_instrs(vec![
            Instr::itype(Op::Addi, Gpr::A0, Gpr::Zero, 5),
            Instr::nullary(Op::Ecall),
        ]);
        let report = program_report(&program.text_bytes());
        assert!(report.starts_with("{\"experiment\":\"analyze\",\"bytes\":8,\"undecodable_words\":0,"));
        assert!(report.contains("\"slots\":2"));
    }

    #[test]
    fn program_report_counts_undecodable_words() {
        // An all-ones word never decodes; it survives as an illegal slot.
        let report = program_report(&[0xff, 0xff, 0xff, 0xff]);
        assert!(report.contains("\"undecodable_words\":1"), "{report}");
        assert!(report.contains("\"illegal_slots\":[0]"), "{report}");
    }
}
