//! Parameter ablations (§IV-A choices and the reset-arm feature of §III-C).
//!
//! The paper fixes `α = 0.25`, `γ = 3` and 10 arms based on preliminary
//! experiments and motivates the arm-reset modification qualitatively. The
//! ablation harness sweeps those choices so the reproduction can show *why*
//! they are reasonable: final coverage as a function of α, γ and the number
//! of arms, plus a head-to-head of MABFuzz with and without arm resets.


use mab::BanditKind;
use mabfuzz::{BugSpec, CampaignSpec, CampaignSpecBuilder, ProcessorSpec};
use proc_sim::ProcessorKind;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;
use crate::runner::{CellRunner, LocalRunner};
use crate::{campaign_config, ExperimentBudget, Parallelism, ShardPlan};

/// One ablation data point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Human-readable parameter setting, e.g. `"alpha=0.25"`.
    pub setting: String,
    /// Mean final coverage over the repetitions.
    pub final_coverage: f64,
    /// Mean number of arm resets over the repetitions.
    pub resets: f64,
}

/// A parameter sweep: several settings of one knob, everything else at the
/// paper defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationSweep {
    /// The knob being swept (`"alpha"`, `"gamma"`, `"arms"`, `"reset"`).
    pub parameter: String,
    /// The processor the sweep ran on.
    pub processor: ProcessorKind,
    /// The data points, in sweep order.
    pub points: Vec<AblationPoint>,
}

impl AblationSweep {
    /// Renders the sweep as a table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(&["Setting", "Final coverage", "Arm resets"]);
        for point in &self.points {
            table.row(vec![
                point.setting.clone(),
                format!("{:.1}", point.final_coverage),
                format!("{:.1}", point.resets),
            ]);
        }
        table
    }

    /// Returns the best-performing setting.
    pub fn best(&self) -> Option<&AblationPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.final_coverage.total_cmp(&b.final_coverage))
    }
}

/// Runs one sweep: each setting is a declarative [`CampaignSpec`] expanded
/// into `budget.repetitions` independent campaign cells (the cell spec is
/// the setting re-seeded with `base_seed + repetition`), the flat cell list
/// goes to `runner` — in-process threads for a [`LocalRunner`], remote
/// workers under `experiments dispatch` — and the means fold the
/// repetitions in order, so results are byte-identical for every
/// [`Parallelism`] mode and every faithful runner.
fn run_sweep_on(
    parameter: &str,
    settings: Vec<(String, CampaignSpec)>,
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    plan: &ShardPlan,
    runner: &dyn CellRunner,
) -> Result<AblationSweep, String> {
    let mut specs = Vec::new();
    for (_, setting) in &settings {
        for repetition in 0..budget.repetitions {
            let mut spec = setting.clone();
            spec.rng_seed = budget.base_seed + repetition;
            spec.shards = plan.shards();
            spec.batch_size = plan.batch_size();
            spec.processor = Some(ProcessorSpec { core: processor, bugs: BugSpec::Native });
            specs.push(spec);
        }
    }

    let summaries = runner.run_cells(&specs)?;
    let outcomes: Vec<(f64, f64)> = summaries
        .iter()
        .map(|summary| (summary.final_coverage as f64, summary.total_resets as f64))
        .collect();

    // One group per setting, in construction order.
    let n = budget.repetitions.max(1) as f64;
    let mut next_group = crate::grid::result_groups(&outcomes, budget.repetitions);
    let points = settings
        .into_iter()
        .map(|(setting, _)| {
            let group = next_group();
            let total_coverage: f64 = group.iter().map(|(coverage, _)| coverage).sum();
            let total_resets: f64 = group.iter().map(|(_, resets)| resets).sum();
            AblationPoint {
                setting,
                final_coverage: total_coverage / n,
                resets: total_resets / n,
            }
        })
        .collect();
    Ok(AblationSweep { parameter: parameter.to_owned(), processor, points })
}

fn base_spec(budget: &ExperimentBudget) -> CampaignSpecBuilder {
    CampaignSpec::builder()
        .algorithm(BanditKind::Ucb1)
        .campaign(campaign_config(budget.coverage_tests))
}

/// Sweeps the reward weight α.
pub fn alpha_sweep(processor: ProcessorKind, budget: &ExperimentBudget) -> AblationSweep {
    alpha_sweep_with(processor, budget, Parallelism::default())
}

/// Sweeps the reward weight α with explicit parallelism.
pub fn alpha_sweep_with(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    parallelism: Parallelism,
) -> AblationSweep {
    alpha_sweep_planned(processor, budget, parallelism, &ShardPlan::serial())
}

/// Sweeps the reward weight α with intra-campaign sharding under `plan`.
pub fn alpha_sweep_planned(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    parallelism: Parallelism,
    plan: &ShardPlan,
) -> AblationSweep {
    alpha_sweep_on(processor, budget, plan, &LocalRunner::new(parallelism))
        .expect("local cell execution cannot fail")
}

/// Sweeps the reward weight α with cell execution delegated to `runner`.
///
/// # Errors
///
/// Whatever error the runner reports; local runners never fail.
pub fn alpha_sweep_on(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    plan: &ShardPlan,
    runner: &dyn CellRunner,
) -> Result<AblationSweep, String> {
    let settings = [0.0, 0.25, 0.5, 1.0]
        .iter()
        .map(|&alpha| {
            (
                format!("alpha={alpha}"),
                base_spec(budget).alpha(alpha).build().expect("valid alpha setting"),
            )
        })
        .collect();
    run_sweep_on("alpha", settings, processor, budget, plan, runner)
}

/// Sweeps the reset threshold γ.
pub fn gamma_sweep(processor: ProcessorKind, budget: &ExperimentBudget) -> AblationSweep {
    gamma_sweep_with(processor, budget, Parallelism::default())
}

/// Sweeps the reset threshold γ with explicit parallelism.
pub fn gamma_sweep_with(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    parallelism: Parallelism,
) -> AblationSweep {
    gamma_sweep_planned(processor, budget, parallelism, &ShardPlan::serial())
}

/// Sweeps the reset threshold γ with intra-campaign sharding under `plan`.
pub fn gamma_sweep_planned(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    parallelism: Parallelism,
    plan: &ShardPlan,
) -> AblationSweep {
    gamma_sweep_on(processor, budget, plan, &LocalRunner::new(parallelism))
        .expect("local cell execution cannot fail")
}

/// Sweeps the reset threshold γ with cell execution delegated to `runner`.
///
/// # Errors
///
/// Whatever error the runner reports; local runners never fail.
pub fn gamma_sweep_on(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    plan: &ShardPlan,
    runner: &dyn CellRunner,
) -> Result<AblationSweep, String> {
    let settings = [1usize, 3, 10]
        .iter()
        .map(|&gamma| {
            (
                format!("gamma={gamma}"),
                base_spec(budget).gamma(gamma).build().expect("valid gamma setting"),
            )
        })
        .collect();
    run_sweep_on("gamma", settings, processor, budget, plan, runner)
}

/// Sweeps the number of arms.
pub fn arms_sweep(processor: ProcessorKind, budget: &ExperimentBudget) -> AblationSweep {
    arms_sweep_with(processor, budget, Parallelism::default())
}

/// Sweeps the number of arms with explicit parallelism.
pub fn arms_sweep_with(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    parallelism: Parallelism,
) -> AblationSweep {
    arms_sweep_planned(processor, budget, parallelism, &ShardPlan::serial())
}

/// Sweeps the number of arms with intra-campaign sharding under `plan`.
pub fn arms_sweep_planned(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    parallelism: Parallelism,
    plan: &ShardPlan,
) -> AblationSweep {
    arms_sweep_on(processor, budget, plan, &LocalRunner::new(parallelism))
        .expect("local cell execution cannot fail")
}

/// Sweeps the number of arms with cell execution delegated to `runner`.
///
/// # Errors
///
/// Whatever error the runner reports; local runners never fail.
pub fn arms_sweep_on(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    plan: &ShardPlan,
    runner: &dyn CellRunner,
) -> Result<AblationSweep, String> {
    let settings = [4usize, 10, 20]
        .iter()
        .map(|&arms| {
            (
                format!("arms={arms}"),
                base_spec(budget).arms(arms).build().expect("valid arm setting"),
            )
        })
        .collect();
    run_sweep_on("arms", settings, processor, budget, plan, runner)
}

/// Compares MABFuzz with the paper's arm-reset feature against a variant
/// whose γ is effectively infinite (arms are never reset).
pub fn reset_ablation(processor: ProcessorKind, budget: &ExperimentBudget) -> AblationSweep {
    reset_ablation_with(processor, budget, Parallelism::default())
}

/// Runs the arm-reset ablation with explicit parallelism.
pub fn reset_ablation_with(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    parallelism: Parallelism,
) -> AblationSweep {
    reset_ablation_planned(processor, budget, parallelism, &ShardPlan::serial())
}

/// Runs the arm-reset ablation with intra-campaign sharding under `plan`.
pub fn reset_ablation_planned(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    parallelism: Parallelism,
    plan: &ShardPlan,
) -> AblationSweep {
    reset_ablation_on(processor, budget, plan, &LocalRunner::new(parallelism))
        .expect("local cell execution cannot fail")
}

/// Runs the arm-reset ablation with cell execution delegated to `runner`.
///
/// # Errors
///
/// Whatever error the runner reports; local runners never fail.
pub fn reset_ablation_on(
    processor: ProcessorKind,
    budget: &ExperimentBudget,
    plan: &ShardPlan,
    runner: &dyn CellRunner,
) -> Result<AblationSweep, String> {
    let never = usize::MAX / 2;
    let settings = vec![
        (
            "reset(gamma=3)".to_owned(),
            base_spec(budget).gamma(3).build().expect("valid reset setting"),
        ),
        (
            "no-reset".to_owned(),
            base_spec(budget).gamma(never).build().expect("valid no-reset setting"),
        ),
    ];
    run_sweep_on("reset", settings, processor, budget, plan, runner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_produce_one_point_per_setting() {
        let budget = ExperimentBudget { coverage_tests: 40, repetitions: 1, ..ExperimentBudget::smoke() };
        let sweep = gamma_sweep(ProcessorKind::Rocket, &budget);
        assert_eq!(sweep.points.len(), 3);
        assert!(sweep.points.iter().all(|p| p.final_coverage > 0.0));
        assert!(sweep.best().is_some());
        let table = sweep.to_table();
        assert_eq!(table.len(), 3);
        assert!(table.render().contains("gamma=3"));
    }

    #[test]
    fn reset_ablation_disables_resets_in_the_no_reset_arm() {
        let budget = ExperimentBudget { coverage_tests: 60, repetitions: 1, ..ExperimentBudget::smoke() };
        let sweep = reset_ablation(ProcessorKind::Rocket, &budget);
        assert_eq!(sweep.points.len(), 2);
        let no_reset = &sweep.points[1];
        assert_eq!(no_reset.resets, 0.0, "gamma=∞ must never reset an arm");
    }
}
