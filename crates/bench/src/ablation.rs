//! Parameter ablations (§IV-A choices and the reset-arm feature of §III-C).
//!
//! The paper fixes `α = 0.25`, `γ = 3` and 10 arms based on preliminary
//! experiments and motivates the arm-reset modification qualitatively. The
//! ablation harness sweeps those choices so the reproduction can show *why*
//! they are reasonable: final coverage as a function of α, γ and the number
//! of arms, plus a head-to-head of MABFuzz with and without arm resets.

use std::sync::Arc;

use mab::BanditKind;
use mabfuzz::{MabFuzzConfig, MabFuzzer};
use proc_sim::ProcessorKind;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;
use crate::{campaign_config, processor_with_native_bugs, ExperimentBudget};

/// One ablation data point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Human-readable parameter setting, e.g. `"alpha=0.25"`.
    pub setting: String,
    /// Mean final coverage over the repetitions.
    pub final_coverage: f64,
    /// Mean number of arm resets over the repetitions.
    pub resets: f64,
}

/// A parameter sweep: several settings of one knob, everything else at the
/// paper defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationSweep {
    /// The knob being swept (`"alpha"`, `"gamma"`, `"arms"`, `"reset"`).
    pub parameter: String,
    /// The processor the sweep ran on.
    pub processor: ProcessorKind,
    /// The data points, in sweep order.
    pub points: Vec<AblationPoint>,
}

impl AblationSweep {
    /// Renders the sweep as a table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(&["Setting", "Final coverage", "Arm resets"]);
        for point in &self.points {
            table.row(vec![
                point.setting.clone(),
                format!("{:.1}", point.final_coverage),
                format!("{:.1}", point.resets),
            ]);
        }
        table
    }

    /// Returns the best-performing setting.
    pub fn best(&self) -> Option<&AblationPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.final_coverage.total_cmp(&b.final_coverage))
    }
}

fn run_point(
    setting: String,
    configure: impl Fn(MabFuzzConfig) -> MabFuzzConfig,
    processor: ProcessorKind,
    budget: &ExperimentBudget,
) -> AblationPoint {
    let mut total_coverage = 0.0;
    let mut total_resets = 0.0;
    for repetition in 0..budget.repetitions {
        let mut config = MabFuzzConfig::new(BanditKind::Ucb1);
        config.campaign = campaign_config(budget.coverage_tests);
        let config = configure(config);
        let outcome = MabFuzzer::new(
            Arc::from(processor_with_native_bugs(processor)),
            config,
            budget.base_seed + repetition,
        )
        .run();
        total_coverage += outcome.stats.final_coverage() as f64;
        total_resets += outcome.total_resets as f64;
    }
    let n = budget.repetitions.max(1) as f64;
    AblationPoint { setting, final_coverage: total_coverage / n, resets: total_resets / n }
}

/// Sweeps the reward weight α.
pub fn alpha_sweep(processor: ProcessorKind, budget: &ExperimentBudget) -> AblationSweep {
    let points = [0.0, 0.25, 0.5, 1.0]
        .iter()
        .map(|&alpha| {
            run_point(format!("alpha={alpha}"), move |c| c.with_alpha(alpha), processor, budget)
        })
        .collect();
    AblationSweep { parameter: "alpha".to_owned(), processor, points }
}

/// Sweeps the reset threshold γ.
pub fn gamma_sweep(processor: ProcessorKind, budget: &ExperimentBudget) -> AblationSweep {
    let points = [1usize, 3, 10]
        .iter()
        .map(|&gamma| {
            run_point(format!("gamma={gamma}"), move |c| c.with_gamma(gamma), processor, budget)
        })
        .collect();
    AblationSweep { parameter: "gamma".to_owned(), processor, points }
}

/// Sweeps the number of arms.
pub fn arms_sweep(processor: ProcessorKind, budget: &ExperimentBudget) -> AblationSweep {
    let points = [4usize, 10, 20]
        .iter()
        .map(|&arms| {
            run_point(format!("arms={arms}"), move |c| c.with_arms(arms), processor, budget)
        })
        .collect();
    AblationSweep { parameter: "arms".to_owned(), processor, points }
}

/// Compares MABFuzz with the paper's arm-reset feature against a variant
/// whose γ is effectively infinite (arms are never reset).
pub fn reset_ablation(processor: ProcessorKind, budget: &ExperimentBudget) -> AblationSweep {
    let never = usize::MAX / 2;
    let points = vec![
        run_point("reset(gamma=3)".to_owned(), |c| c.with_gamma(3), processor, budget),
        run_point("no-reset".to_owned(), move |c| c.with_gamma(never), processor, budget),
    ];
    AblationSweep { parameter: "reset".to_owned(), processor, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_produce_one_point_per_setting() {
        let budget = ExperimentBudget { coverage_tests: 40, repetitions: 1, ..ExperimentBudget::smoke() };
        let sweep = gamma_sweep(ProcessorKind::Rocket, &budget);
        assert_eq!(sweep.points.len(), 3);
        assert!(sweep.points.iter().all(|p| p.final_coverage > 0.0));
        assert!(sweep.best().is_some());
        let table = sweep.to_table();
        assert_eq!(table.len(), 3);
        assert!(table.render().contains("gamma=3"));
    }

    #[test]
    fn reset_ablation_disables_resets_in_the_no_reset_arm() {
        let budget = ExperimentBudget { coverage_tests: 60, repetitions: 1, ..ExperimentBudget::smoke() };
        let sweep = reset_ablation(ProcessorKind::Rocket, &budget);
        assert_eq!(sweep.points.len(), 2);
        let no_reset = &sweep.points[1];
        assert_eq!(no_reset.resets, 0.0, "gamma=∞ must never reset an arm");
    }
}
