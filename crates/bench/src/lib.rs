//! Experiment harness regenerating the MABFuzz paper's tables and figures.
//!
//! Every experiment in the paper's evaluation section has a corresponding
//! module here:
//!
//! | Paper artefact | Module | What it reports |
//! |---|---|---|
//! | Table I  | [`table1`] | tests-to-detection per vulnerability, and the speedup of each MABFuzz algorithm over TheHuzz |
//! | Fig. 3   | [`fig3`]   | branch-coverage-versus-tests curves per processor and fuzzer |
//! | Fig. 4   | [`fig4`]   | coverage speedup (×) and coverage increment (%) per algorithm and processor |
//! | §IV-A parameter choices | [`ablation`] | α, γ and arm-count sweeps plus the reset-feature ablation |
//!
//! The modules are plain library code so that the `experiments` binary, the
//! Criterion benches and the integration tests all drive exactly the same
//! implementations. Campaign budgets are parameters everywhere: the paper ran
//! 50 000 tests per campaign on a simulation farm, the defaults here are
//! laptop-sized, and the shapes (who wins, by roughly what factor) are what
//! the reproduction checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod analyze;
pub mod fig3;
pub mod fig4;
pub mod grid;
pub mod json;
pub mod report;
pub mod runner;
pub mod table1;

use std::borrow::Cow;
use std::sync::Arc;

pub use grid::{run_grid, Parallelism};
pub use fuzzer::ShardPlan;
pub use mabfuzz::{Campaign, CampaignObserver, CampaignSpec, EventLog, PolicySpec, ProgressMonitor};
pub use runner::{CellRunner, LocalRunner};

use fuzzer::{CampaignConfig, CampaignStats};
use mab::BanditKind;
use proc_sim::{BugSet, Processor, ProcessorKind};

/// Which fuzzer a campaign uses: the baseline or MABFuzz with one of the
/// three algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FuzzerKind {
    /// The TheHuzz-style baseline (static FIFO scheduling).
    TheHuzz,
    /// MABFuzz with the given bandit algorithm.
    MabFuzz(BanditKind),
}

impl FuzzerKind {
    /// The four fuzzers compared throughout the paper.
    pub const ALL: [FuzzerKind; 4] = [
        FuzzerKind::TheHuzz,
        FuzzerKind::MabFuzz(BanditKind::EpsilonGreedy),
        FuzzerKind::MabFuzz(BanditKind::Ucb1),
        FuzzerKind::MabFuzz(BanditKind::Exp3),
    ];

    /// The three MABFuzz variants.
    pub const MABFUZZ: [FuzzerKind; 3] = [
        FuzzerKind::MabFuzz(BanditKind::EpsilonGreedy),
        FuzzerKind::MabFuzz(BanditKind::Ucb1),
        FuzzerKind::MabFuzz(BanditKind::Exp3),
    ];

    /// Returns the display name used in tables.
    ///
    /// Borrowed from precomputed labels for the paper's fuzzers — `name()`
    /// sits in hot bench loops (benchmark ids, per-row table rendering), so
    /// the built-in variants must not allocate. Custom registered policies
    /// (outside every hot loop) render as `MABFuzz: <registered name>`.
    pub fn name(self) -> Cow<'static, str> {
        Cow::Borrowed(match self {
            FuzzerKind::TheHuzz => "TheHuzz",
            FuzzerKind::MabFuzz(BanditKind::EpsilonGreedy) => "MABFuzz: epsilon-greedy",
            FuzzerKind::MabFuzz(BanditKind::Ucb1) => "MABFuzz: UCB",
            FuzzerKind::MabFuzz(BanditKind::Exp3) => "MABFuzz: EXP3",
            FuzzerKind::MabFuzz(custom) => return Cow::Owned(format!("MABFuzz: {custom}")),
        })
    }

    /// The policy this fuzzer corresponds to in a [`CampaignSpec`].
    pub fn policy(self) -> PolicySpec {
        match self {
            FuzzerKind::TheHuzz => PolicySpec::Baseline,
            FuzzerKind::MabFuzz(kind) => PolicySpec::Bandit(kind),
        }
    }
}

impl std::fmt::Display for FuzzerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Shared experiment sizing parameters.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentBudget {
    /// Tests per coverage campaign (Fig. 3 / Fig. 4).
    pub coverage_tests: u64,
    /// Maximum tests per vulnerability-detection campaign (Table I).
    pub detection_cap: u64,
    /// Independent repetitions averaged per data point.
    pub repetitions: u64,
    /// Base RNG seed; repetition `r` uses `base_seed + r`.
    pub base_seed: u64,
}

impl Default for ExperimentBudget {
    fn default() -> Self {
        ExperimentBudget { coverage_tests: 2000, detection_cap: 3000, repetitions: 3, base_seed: 2024 }
    }
}

impl ExperimentBudget {
    /// A very small budget used by the Criterion benches and the integration
    /// tests so they finish in seconds.
    pub fn smoke() -> ExperimentBudget {
        ExperimentBudget { coverage_tests: 120, detection_cap: 250, repetitions: 1, base_seed: 7 }
    }
}

/// Builds the [`CampaignSpec`] describing one grid cell: `fuzzer_kind` with
/// the paper-default reward/reset parameters over `campaign`, seeded
/// `rng_seed`, sharded per `plan`.
///
/// This is the construction every experiment cell goes through — the grid
/// is a consumer of specs, and a cell's spec serializes
/// ([`CampaignSpec::to_json`]) into exactly what `experiments run --spec`
/// would replay.
///
/// # Panics
///
/// Panics when the combination is invalid (a zero test budget, say) —
/// grid callers construct cells programmatically, so an invalid cell is a
/// harness bug, not user input.
pub fn campaign_spec(
    fuzzer_kind: FuzzerKind,
    campaign: CampaignConfig,
    rng_seed: u64,
    plan: &ShardPlan,
) -> CampaignSpec {
    CampaignSpec::builder()
        .policy(fuzzer_kind.policy())
        .campaign(campaign)
        .rng_seed(rng_seed)
        .plan(plan)
        .build()
        .expect("grid cells are valid by construction")
}

/// Runs one campaign of `fuzzer_kind` against `processor` and returns its
/// statistics.
pub fn run_campaign(
    fuzzer_kind: FuzzerKind,
    processor: Arc<dyn Processor>,
    campaign: CampaignConfig,
    rng_seed: u64,
) -> CampaignStats {
    run_campaign_planned(fuzzer_kind, processor, campaign, rng_seed, &ShardPlan::serial())
}

/// Runs one campaign of `fuzzer_kind` against `processor` under a
/// [`ShardPlan`] and returns its statistics.
///
/// The cell is described by a [`CampaignSpec`] (see [`campaign_spec`]) and
/// executed through the [`Campaign`] session type. MABFuzz campaigns
/// simulate each bandit round's batch across the plan's shard workers
/// (reports are byte-identical for every shard count at a fixed batch size;
/// see the determinism contract in `fuzzer::shard`). The TheHuzz baseline
/// has no round structure to batch, so it ignores the plan and stays
/// serial — callers composing thread budgets should still reserve only one
/// thread for its cells.
pub fn run_campaign_planned(
    fuzzer_kind: FuzzerKind,
    processor: Arc<dyn Processor>,
    campaign: CampaignConfig,
    rng_seed: u64,
    plan: &ShardPlan,
) -> CampaignStats {
    let spec = campaign_spec(fuzzer_kind, campaign, rng_seed, plan);
    Campaign::from_spec_on(processor, &spec)
        .expect("grid specs are valid by construction")
        .execute()
        .stats
}

/// Builds a processor with its paper-native bugs enabled.
pub fn processor_with_native_bugs(kind: ProcessorKind) -> Arc<dyn Processor> {
    Arc::from(kind.build_with_native_bugs())
}

/// Builds a bug-free processor (used by the coverage experiments, where
/// vulnerability detection is not the point).
pub fn processor_without_bugs(kind: ProcessorKind) -> Arc<dyn Processor> {
    Arc::from(kind.build(BugSet::none()))
}

/// The default campaign configuration used by the experiments, scaled to a
/// given test budget.
///
/// The seed-generation profile is slightly more conservative than the library
/// default: rare instruction classes (fences, system instructions, wild or
/// unimplemented-CSR accesses) are generated less often, so the deep
/// vulnerability triggers are reached through mutation chains rather than
/// plain seed luck — which is the regime where seed *selection* (the paper's
/// contribution) matters.
pub fn campaign_config(max_tests: u64) -> CampaignConfig {
    let mut generator = riscv::gen::GeneratorConfig::default();
    generator.weights.fence = 1;
    generator.weights.system = 1;
    generator.weights.csr = 3;
    generator.unimplemented_csr_prob = 0.05;
    generator.wild_memory_prob = 0.02;
    CampaignConfig {
        max_tests,
        max_steps_per_test: 300,
        num_seeds: 10,
        mutations_per_interesting_test: 4,
        sample_interval: (max_tests / 100).max(1),
        generator,
        ..CampaignConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzer_kind_names() {
        assert_eq!(FuzzerKind::TheHuzz.name(), "TheHuzz");
        assert_eq!(FuzzerKind::MabFuzz(BanditKind::Ucb1).name(), "MABFuzz: UCB");
        assert_eq!(FuzzerKind::ALL.len(), 4);
        assert_eq!(FuzzerKind::MABFUZZ.len(), 3);
    }

    #[test]
    fn run_campaign_dispatches_to_both_fuzzers() {
        let config = campaign_config(15);
        let baseline = run_campaign(
            FuzzerKind::TheHuzz,
            processor_without_bugs(ProcessorKind::Rocket),
            config.clone(),
            1,
        );
        let mabfuzz = run_campaign(
            FuzzerKind::MabFuzz(BanditKind::Ucb1),
            processor_without_bugs(ProcessorKind::Rocket),
            config,
            1,
        );
        assert_eq!(baseline.tests_executed(), 15);
        assert_eq!(mabfuzz.tests_executed(), 15);
        assert!(baseline.label().contains("TheHuzz"));
        assert!(mabfuzz.label().contains("MABFuzz"));
    }

    #[test]
    fn budgets_have_sane_defaults() {
        let default = ExperimentBudget::default();
        assert!(default.coverage_tests > ExperimentBudget::smoke().coverage_tests);
        assert!(default.repetitions >= 1);
    }
}
