//! Plain-text table rendering for the experiment harness.

/// A simple fixed-width text table.
///
/// The experiment harness prints its results as monospace tables shaped like
/// the paper's Table I and the data series behind Figs. 3 and 4, so the
/// reproduction can be eyeballed against the original.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match the header");
        self.rows.push(cells);
    }

    /// Returns the number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line
        };
        let separator = {
            let mut line = String::from("|");
            for width in &widths {
                line.push_str(&format!("{}|", "-".repeat(width + 2)));
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&separator);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a speedup factor the way the paper prints them (`"13.04x"`, or
/// `">=12.5x"` when the baseline never finished within its cap).
pub fn format_speedup(speedup: Option<f64>) -> String {
    match speedup {
        Some(value) => format!("{value:.2}x"),
        None => "n/a".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = TextTable::new(&["Vulnerability", "TheHuzz", "UCB"]);
        table.row(vec!["V1".into(), "600".into(), "13.04x".into()]);
        table.row(vec!["V7 long name".into(), "927".into(), "185.34x".into()]);
        let text = table.render();
        assert!(text.contains("| Vulnerability"));
        assert!(text.contains("| V7 long name"));
        let widths: Vec<usize> = text.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "all lines share the same width");
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut table = TextTable::new(&["a", "b"]);
        table.row(vec!["only one".into()]);
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(format_speedup(Some(12.345)), "12.35x");
        assert_eq!(format_speedup(None), "n/a");
    }
}
