//! Micro-benchmarks of the building blocks: the modified bandit algorithms,
//! the mutation engine and single-test simulation on each core.
//!
//! These are not a paper artefact by themselves; they quantify the claim that
//! the MAB layer's decision-making cost is negligible next to RTL simulation
//! (the paper's speedups are reported in *tests*, implicitly assuming the
//! per-test scheduling overhead is free — here that assumption is measured).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzer::{FuzzHarness, MutationEngine};
use mab::BanditKind;
use proc_sim::{BugSet, ProcessorKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use riscv::gen::{GeneratorConfig, ProgramGenerator};
use std::sync::Arc;

fn bench_bandit_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("bandit_select_update");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for kind in BanditKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let mut bandit = kind.build(10);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let arm = bandit.select(&mut rng);
                bandit.update(arm, 0.3);
                arm
            });
        });
    }
    group.finish();
}

fn bench_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutation_engine");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let generator = ProgramGenerator::new(GeneratorConfig::default());
    let engine = MutationEngine::new(GeneratorConfig::default());
    let seed = generator.generate_seed(&mut StdRng::seed_from_u64(2));
    group.bench_function("mutate_one", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| engine.mutate(&seed, &mut rng));
    });
    group.finish();
}

fn bench_single_test_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_test_simulation");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let generator = ProgramGenerator::new(GeneratorConfig::default());
    let program = generator.generate_seed(&mut StdRng::seed_from_u64(4));
    for core in ProcessorKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(core.name()), &core, |b, &core| {
            let harness = FuzzHarness::new(Arc::from(core.build(BugSet::none())), 300);
            b.iter(|| harness.run_program(&program));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bandit_step, bench_mutation, bench_single_test_simulation);
criterion_main!(benches);
