//! Bench + regeneration harness for **Fig. 3** (branch coverage versus number
//! of tests on CVA6, Rocket and BOOM).
//!
//! Running `cargo bench --bench fig3_coverage_curves` first prints the
//! coverage-versus-tests series for every processor and fuzzer (the data
//! behind the three panels of Fig. 3), then measures the throughput of a
//! fixed-size coverage campaign per fuzzer on each core.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mabfuzz_bench::{campaign_config, fig3, processor_with_native_bugs, run_campaign, ExperimentBudget, FuzzerKind};
use proc_sim::ProcessorKind;

fn print_fig3_reproduction() {
    let budget = ExperimentBudget {
        coverage_tests: 800,
        detection_cap: 0,
        repetitions: 2,
        base_seed: 2024,
    };
    println!(
        "\n=== Fig. 3 reproduction ({} tests per campaign, {} repetitions) ===",
        budget.coverage_tests, budget.repetitions
    );
    let result = fig3::run(&budget);
    for curves in &result.processors {
        println!("-- {} ({} coverage points) --", curves.processor, curves.space_len);
        println!("{}", result.to_table(curves.processor, 10));
    }
}

fn bench_coverage_campaigns(c: &mut Criterion) {
    print_fig3_reproduction();

    let mut group = c.benchmark_group("fig3_coverage_campaign");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    for core in ProcessorKind::ALL {
        for fuzzer in [FuzzerKind::TheHuzz, FuzzerKind::MabFuzz(mab::BanditKind::Ucb1)] {
            let id = BenchmarkId::new(core.name(), fuzzer.name());
            group.bench_with_input(id, &(core, fuzzer), |b, &(core, fuzzer)| {
                b.iter(|| {
                    run_campaign(fuzzer, processor_with_native_bugs(core), campaign_config(100), 5)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_coverage_campaigns);
criterion_main!(benches);
