//! Throughput benchmarks for the two performance layers:
//!
//! * **single-thread tests/sec** — the simulate–compare–mutate hot path
//!   through the reusable-scratch harness (no per-test heap allocation in
//!   the steady-state coverage/reward path), measured both as single tests
//!   and as whole smoke campaigns per fuzzer;
//! * **parallel campaigns/sec** — the grid executor spreading independent
//!   campaigns across cores versus the serial reference.
//!
//! Run with `cargo bench --bench throughput`. The printed per-iteration
//! times convert directly: a campaign iteration is `coverage_tests` tests,
//! so tests/sec = coverage_tests / iteration-time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzer::{ExecScratch, FuzzHarness};
use mabfuzz_bench::{campaign_config, run_campaign, ExperimentBudget, FuzzerKind, Parallelism};
use proc_sim::{BugSet, ProcessorKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use riscv::gen::{GeneratorConfig, ProgramGenerator};
use std::sync::Arc;

/// Single tests through the reusable-scratch harness: the per-test cost that
/// bounds every campaign.
fn bench_single_test_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_single_test");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let generator = ProgramGenerator::new(GeneratorConfig::default());
    let program = generator.generate_seed(&mut StdRng::seed_from_u64(1));
    for core in ProcessorKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("scratch", core.name()),
            &core,
            |b, &core| {
                let harness = FuzzHarness::new(Arc::from(core.build(BugSet::none())), 300);
                let mut scratch = ExecScratch::new();
                b.iter(|| harness.run_program_into(&program, &mut scratch).dut_commits);
            },
        );
        // The same harness with the decode cache pinned on and off,
        // independent of `MABFUZZ_DECODE_CACHE`: the cached/interpreted
        // spread is the per-test win of executing pre-decoded `Instr`s.
        group.bench_with_input(
            BenchmarkId::new("decoded", core.name()),
            &core,
            |b, &core| {
                let harness = FuzzHarness::new(Arc::from(core.build(BugSet::none())), 300);
                let mut scratch = ExecScratch::with_decode_cache(true);
                b.iter(|| harness.run_program_into(&program, &mut scratch).dut_commits);
            },
        );
        group.bench_with_input(
            BenchmarkId::new("interpreted", core.name()),
            &core,
            |b, &core| {
                let harness = FuzzHarness::new(Arc::from(core.build(BugSet::none())), 300);
                let mut scratch = ExecScratch::with_decode_cache(false);
                b.iter(|| harness.run_program_into(&program, &mut scratch).dut_commits);
            },
        );
        // The same harness with the reset policy pinned to snapshot restore
        // and full reinit, independent of `MABFUZZ_SNAPSHOT_RESET`: the
        // snapshot/reinit spread is the per-test win of restoring only the
        // state the previous test dirtied instead of rebuilding all of it.
        group.bench_with_input(
            BenchmarkId::new("snapshot", core.name()),
            &core,
            |b, &core| {
                let harness = FuzzHarness::new(Arc::from(core.build(BugSet::none())), 300);
                let mut scratch = ExecScratch::with_snapshot_reset(true);
                b.iter(|| harness.run_program_into(&program, &mut scratch).dut_commits);
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reinit", core.name()),
            &core,
            |b, &core| {
                let harness = FuzzHarness::new(Arc::from(core.build(BugSet::none())), 300);
                let mut scratch = ExecScratch::with_snapshot_reset(false);
                b.iter(|| harness.run_program_into(&program, &mut scratch).dut_commits);
            },
        );
        // The allocating path on the same program: the permanent A/B that
        // keeps the scratch path honest.
        group.bench_with_input(
            BenchmarkId::new("allocating", core.name()),
            &core,
            |b, &core| {
                let harness = FuzzHarness::new(Arc::from(core.build(BugSet::none())), 300);
                b.iter(|| harness.run_program(&program).dut_commits);
            },
        );
    }
    group.finish();
}

/// Whole smoke campaigns, single-threaded: tests/sec of the full loop
/// (generation, mutation, simulation, diffing, reward bookkeeping).
fn bench_campaign_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_campaign");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let budget = ExperimentBudget::smoke();
    for fuzzer in FuzzerKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(fuzzer.name()), &fuzzer, |b, &fuzzer| {
            b.iter(|| {
                run_campaign(
                    fuzzer,
                    mabfuzz_bench::processor_without_bugs(ProcessorKind::Rocket),
                    campaign_config(budget.coverage_tests),
                    budget.base_seed,
                )
                .final_coverage()
            });
        });
    }
    group.finish();
}

/// One sharded MABFuzz campaign at several shard counts: the intra-campaign
/// fork/join layer. Every shard count runs the *same* deterministic
/// campaign (byte-identical report; the equivalence tests enforce it), so
/// the per-iteration time ratio between 1 shard and N shards is pure
/// simulation speedup. On a multi-core runner multi-shard should be ≥1.5×
/// the single-shard time; on one core it must simply not regress
/// materially (the pool adds two channel hops per test).
fn bench_sharded_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_sharded_campaign");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let budget = ExperimentBudget::smoke();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut shard_counts = vec![1usize, 2, 4, cores];
    shard_counts.sort_unstable();
    shard_counts.dedup();
    for shards in shard_counts {
        let plan = mabfuzz_bench::ShardPlan::sharded(shards);
        group.bench_with_input(BenchmarkId::from_parameter(shards), &plan, |b, plan| {
            b.iter(|| {
                mabfuzz_bench::run_campaign_planned(
                    FuzzerKind::MabFuzz(mab::BanditKind::Ucb1),
                    mabfuzz_bench::processor_without_bugs(ProcessorKind::Rocket),
                    campaign_config(budget.coverage_tests * 4),
                    budget.base_seed,
                    plan,
                )
                .final_coverage()
            });
        });
    }
    group.finish();
}

/// The grid executor: a fixed batch of independent campaigns, serial versus
/// all cores. The ratio of the two times is the experiment-engine speedup.
fn bench_grid_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_grid_16_campaigns");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    let cells: Vec<u64> = (0..16).collect();
    for (label, parallelism) in [("serial", Parallelism::Serial), ("auto", Parallelism::Auto)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &parallelism, |b, &mode| {
            b.iter(|| {
                mabfuzz_bench::run_grid(mode, &cells, |&seed| {
                    run_campaign(
                        FuzzerKind::MabFuzz(mab::BanditKind::Ucb1),
                        mabfuzz_bench::processor_without_bugs(ProcessorKind::Rocket),
                        campaign_config(60),
                        seed,
                    )
                    .final_coverage()
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_test_throughput,
    bench_campaign_throughput,
    bench_sharded_campaign,
    bench_grid_scaling
);
criterion_main!(benches);
