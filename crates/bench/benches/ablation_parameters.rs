//! Bench + regeneration harness for the **parameter ablations** (§IV-A
//! parameter choices and the §III-C reset-arm feature).
//!
//! Running `cargo bench --bench ablation_parameters` first prints the α, γ,
//! arm-count and reset-versus-no-reset sweeps, then benchmarks a MABFuzz
//! campaign at two γ settings so the cost of frequent arm resets is visible.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mab::BanditKind;
use mabfuzz::{MabFuzzConfig, MabFuzzer};
use mabfuzz_bench::{ablation, campaign_config, processor_with_native_bugs, ExperimentBudget};
use proc_sim::ProcessorKind;

fn print_ablation_reproduction() {
    let budget = ExperimentBudget {
        coverage_tests: 400,
        detection_cap: 0,
        repetitions: 2,
        base_seed: 2024,
    };
    println!(
        "\n=== Parameter ablations ({} tests per campaign, {} repetitions, UCB on Rocket) ===",
        budget.coverage_tests, budget.repetitions
    );
    for sweep in [
        ablation::alpha_sweep(ProcessorKind::Rocket, &budget),
        ablation::gamma_sweep(ProcessorKind::Rocket, &budget),
        ablation::arms_sweep(ProcessorKind::Rocket, &budget),
        ablation::reset_ablation(ProcessorKind::Rocket, &budget),
    ] {
        println!("-- {} sweep --", sweep.parameter);
        println!("{}", sweep.to_table());
    }
}

fn bench_gamma_settings(c: &mut Criterion) {
    print_ablation_reproduction();

    let mut group = c.benchmark_group("ablation_gamma");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    for gamma in [1usize, 3, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, &gamma| {
            b.iter(|| {
                let mut config = MabFuzzConfig::new(BanditKind::Ucb1).with_gamma(gamma);
                config.campaign = campaign_config(100);
                MabFuzzer::new(
                    processor_with_native_bugs(ProcessorKind::Rocket),
                    config,
                    9,
                )
                .run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gamma_settings);
criterion_main!(benches);
