//! Bench + regeneration harness for **Table I** (vulnerability detection
//! speedup).
//!
//! Running `cargo bench --bench table1_vuln_detection` first prints a
//! reduced-budget reproduction of Table I (every vulnerability × every
//! fuzzer), then measures the cost of individual detection campaigns so the
//! scheduling overhead of MABFuzz relative to TheHuzz is visible.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mab::BanditKind;
use mabfuzz_bench::{campaign_config, run_campaign, table1, ExperimentBudget, FuzzerKind};
use proc_sim::{BugSet, ProcessorKind, Vulnerability};

fn print_table1_reproduction() {
    let budget = ExperimentBudget {
        detection_cap: 600,
        coverage_tests: 0,
        repetitions: 2,
        base_seed: 2024,
    };
    println!(
        "\n=== Table I reproduction (detection cap {} tests, {} repetitions) ===",
        budget.detection_cap, budget.repetitions
    );
    let result = table1::run(&budget);
    println!("{}", result.to_table());
    if let Some(best) = result.best_speedup() {
        println!("best speedup over TheHuzz: {best:.2}x\n");
    }
}

fn bench_detection_campaigns(c: &mut Criterion) {
    print_table1_reproduction();

    let mut group = c.benchmark_group("table1_detection_campaign");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    // V6 (unimplemented-CSR junk) triggers within a few dozen tests for every
    // fuzzer, so a capped detection campaign is a stable unit of work.
    let fuzzers = [
        FuzzerKind::TheHuzz,
        FuzzerKind::MabFuzz(BanditKind::EpsilonGreedy),
        FuzzerKind::MabFuzz(BanditKind::Ucb1),
        FuzzerKind::MabFuzz(BanditKind::Exp3),
    ];
    for fuzzer in fuzzers {
        group.bench_with_input(BenchmarkId::new("detect_v6", fuzzer.name()), &fuzzer, |b, &fuzzer| {
            b.iter(|| {
                let processor: Arc<dyn proc_sim::Processor> = Arc::from(
                    ProcessorKind::Cva6.build(BugSet::only(Vulnerability::V6UnimplCsrJunk)),
                );
                let config = campaign_config(150).detection_mode();
                run_campaign(fuzzer, processor, config, 11)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detection_campaigns);
criterion_main!(benches);
