//! Bench + regeneration harness for **Fig. 4** (coverage speedup and coverage
//! increment of each MABFuzz algorithm over TheHuzz).
//!
//! Running `cargo bench --bench fig4_speedup_increment` first prints the
//! speedup (×) and increment (%) rows for every processor and algorithm, then
//! benchmarks the pair of campaigns (baseline + one MABFuzz variant) that one
//! Fig. 4 cell is computed from.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mab::BanditKind;
use mabfuzz_bench::{campaign_config, fig4, processor_with_native_bugs, run_campaign, ExperimentBudget, FuzzerKind};
use proc_sim::ProcessorKind;

fn print_fig4_reproduction() {
    let budget = ExperimentBudget {
        coverage_tests: 800,
        detection_cap: 0,
        repetitions: 2,
        base_seed: 2024,
    };
    println!(
        "\n=== Fig. 4 reproduction ({} tests per campaign, {} repetitions) ===",
        budget.coverage_tests, budget.repetitions
    );
    let result = fig4::run(&budget);
    println!("{}", result.to_table());
    if let Some(best) = result.best_speedup() {
        println!("best coverage speedup over TheHuzz: {best:.2}x\n");
    }
}

fn bench_speedup_cells(c: &mut Criterion) {
    print_fig4_reproduction();

    let mut group = c.benchmark_group("fig4_speedup_cell");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    for algorithm in BanditKind::ALL {
        let id = BenchmarkId::new("rocket", algorithm.name());
        group.bench_with_input(id, &algorithm, |b, &algorithm| {
            b.iter(|| {
                let baseline = run_campaign(
                    FuzzerKind::TheHuzz,
                    processor_with_native_bugs(ProcessorKind::Rocket),
                    campaign_config(80),
                    3,
                );
                let variant = run_campaign(
                    FuzzerKind::MabFuzz(algorithm),
                    processor_with_native_bugs(ProcessorKind::Rocket),
                    campaign_config(80),
                    3,
                );
                let target = baseline.final_coverage();
                (variant.tests_to_reach(target), variant.final_coverage())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_speedup_cells);
criterion_main!(benches);
