//! The parallel experiment engine's contract: running the grid across
//! threads produces *byte-identical* reports to the serial reference, and
//! the scratch-buffer hot path underneath is deterministic.

use std::num::NonZeroUsize;

use mabfuzz_bench::{
    ablation, campaign_config, fig3, fig4, json, run_campaign, table1, ExperimentBudget,
    FuzzerKind, Parallelism, ShardPlan,
};
use proc_sim::{ProcessorKind, Vulnerability};

fn tiny_budget() -> ExperimentBudget {
    ExperimentBudget { coverage_tests: 60, detection_cap: 120, repetitions: 2, base_seed: 11 }
}

#[test]
fn table1_parallel_json_is_byte_identical_to_serial() {
    let budget = tiny_budget();
    let vulns = [Vulnerability::V5MissingAccessFault, Vulnerability::V6UnimplCsrJunk];
    let serial = table1::run_for_with(&vulns, &budget, Parallelism::Serial);
    let parallel = table1::run_for_with(&vulns, &budget, Parallelism::Auto);
    assert_eq!(serial, parallel, "structured results must match exactly");
    assert_eq!(json::table1(&serial), json::table1(&parallel));
}

#[test]
fn fig3_and_fig4_parallel_json_is_byte_identical_to_serial() {
    let budget = tiny_budget();
    let cores = [ProcessorKind::Cva6, ProcessorKind::Rocket];
    let serial = fig3::run_for_with(&cores, &budget, Parallelism::Serial);
    let two = Parallelism::Threads(NonZeroUsize::new(2).expect("nonzero"));
    let parallel = fig3::run_for_with(&cores, &budget, two);
    assert_eq!(serial, parallel);
    assert_eq!(json::fig3(&serial), json::fig3(&parallel));
    assert_eq!(
        json::fig4(&fig4::from_fig3(&serial)),
        json::fig4(&fig4::from_fig3(&parallel))
    );
}

#[test]
fn ablation_parallel_json_is_byte_identical_to_serial() {
    let budget = ExperimentBudget { repetitions: 2, coverage_tests: 40, ..tiny_budget() };
    let serial = ablation::gamma_sweep_with(ProcessorKind::Rocket, &budget, Parallelism::Serial);
    let parallel = ablation::gamma_sweep_with(ProcessorKind::Rocket, &budget, Parallelism::Auto);
    assert_eq!(serial, parallel);
    assert_eq!(json::ablation(&serial), json::ablation(&parallel));
}

/// The two parallelism layers composed: a sharded experiment grid produces
/// byte-identical JSON for every (cell workers × campaign shards)
/// combination — the contract `experiments --shards N` exposes.
#[test]
fn sharded_experiment_json_is_byte_identical_across_layers() {
    let budget = ExperimentBudget { coverage_tests: 48, repetitions: 2, ..tiny_budget() };
    let cores = [ProcessorKind::Rocket];
    let reference = fig3::run_for_planned(
        &cores,
        &budget,
        Parallelism::Serial,
        &ShardPlan::sharded(1).with_batch_size(8),
    );
    for cell_workers in [Parallelism::Serial, Parallelism::Auto] {
        for shards in [1usize, 2, 3] {
            let plan = ShardPlan::sharded(shards).with_batch_size(8);
            let sharded = fig3::run_for_planned(&cores, &budget, cell_workers, &plan);
            assert_eq!(reference, sharded, "{cell_workers} cell workers, {shards} shards");
            assert_eq!(json::fig3(&reference), json::fig3(&sharded));
        }
    }
}

/// Determinism regression for the scratch-buffer refactor: a campaign's
/// statistics must depend only on (fuzzer, processor, config, seed) — not on
/// whether the harness buffers were fresh or reused, and not on which thread
/// ran it.
#[test]
fn run_campaign_is_deterministic_under_buffer_reuse() {
    for fuzzer in FuzzerKind::ALL {
        let run = |seed: u64| {
            run_campaign(
                fuzzer,
                mabfuzz_bench::processor_with_native_bugs(ProcessorKind::Cva6),
                campaign_config(80),
                seed,
            )
        };
        let first = run(5);
        let second = run(5);
        assert_eq!(first.final_coverage(), second.final_coverage(), "{fuzzer}");
        assert_eq!(first.cumulative().history(), second.cumulative().history(), "{fuzzer}");
        assert_eq!(first.mismatching_tests(), second.mismatching_tests(), "{fuzzer}");
        assert_eq!(
            first.series().points(),
            second.series().points(),
            "{fuzzer} coverage curve must be reproducible"
        );
        let different = run(6);
        assert_ne!(
            first.cumulative().history(),
            different.cumulative().history(),
            "{fuzzer} must actually depend on the seed"
        );
    }
}
