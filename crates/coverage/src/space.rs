//! Coverage-point registries.

// detlint: allow-file(default-hasher) -- the index is only ever probed by
// key (registration dedup, id lookup); artefact ordering comes from the
// `points` Vec. `per_module_counts` returns a map its (test-only) consumers
// probe by key as well.
use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a coverage point inside its [`CoverageSpace`].
///
/// Ids are dense (`0..space.len()`), which lets [`CoverageMap`](crate::CoverageMap)
/// store coverage as a flat bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoverPointId(pub u32);

impl CoverPointId {
    /// Returns the id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoverPointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cp{}", self.0)
    }
}

/// Metadata describing one coverage point.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoverPointInfo {
    /// The module (pipeline stage, cache, …) the point belongs to.
    pub module: String,
    /// The decision site within the module, e.g. `"is_load"` or
    /// `"opcode_class=mul/priv=M"`.
    pub site: String,
    /// The branch direction this point records (`true` = taken edge).
    pub direction: bool,
}

impl fmt::Display for CoverPointInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}[{}]", self.module, self.site, if self.direction { "T" } else { "F" })
    }
}

/// The registry of every coverage point a design exposes.
///
/// A processor model builds its space once at construction time by calling
/// [`register_branch`](CoverageSpace::register_branch) for both directions of
/// every modelled decision; the ids are stable for the lifetime of the model,
/// so coverage maps from different tests are directly comparable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoverageSpace {
    design: String,
    points: Vec<CoverPointInfo>,
    #[serde(skip)]
    index: HashMap<(String, String, bool), CoverPointId>,
}

impl CoverageSpace {
    /// Creates an empty space for the named design.
    pub fn new(design: impl Into<String>) -> CoverageSpace {
        CoverageSpace { design: design.into(), points: Vec::new(), index: HashMap::new() }
    }

    /// Returns the design name the space belongs to.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Registers (or looks up) the coverage point for one direction of a
    /// decision site and returns its id.
    ///
    /// Registering the same `(module, site, direction)` twice returns the same
    /// id, so instrumentation code does not need to deduplicate.
    pub fn register_branch(
        &mut self,
        module: impl Into<String>,
        site: impl Into<String>,
        direction: bool,
    ) -> CoverPointId {
        let module = module.into();
        let site = site.into();
        let key = (module.clone(), site.clone(), direction);
        if let Some(id) = self.index.get(&key) {
            return *id;
        }
        let id = CoverPointId(self.points.len() as u32);
        self.points.push(CoverPointInfo { module, site, direction });
        self.index.insert(key, id);
        id
    }

    /// Registers both directions of a decision site, returning
    /// `(taken, not_taken)` ids.
    pub fn register_site(
        &mut self,
        module: impl Into<String> + Clone,
        site: impl Into<String> + Clone,
    ) -> (CoverPointId, CoverPointId) {
        let taken = self.register_branch(module.clone(), site.clone(), true);
        let not_taken = self.register_branch(module, site, false);
        (taken, not_taken)
    }

    /// Returns the number of registered points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no points are registered.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the metadata of a point.
    pub fn info(&self, id: CoverPointId) -> Option<&CoverPointInfo> {
        self.points.get(id.index())
    }

    /// Looks up a point by its full key.
    pub fn lookup(&self, module: &str, site: &str, direction: bool) -> Option<CoverPointId> {
        self.index
            .get(&(module.to_owned(), site.to_owned(), direction))
            .copied()
    }

    /// Returns an iterator over `(id, info)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (CoverPointId, &CoverPointInfo)> {
        self.points.iter().enumerate().map(|(i, info)| (CoverPointId(i as u32), info))
    }

    /// Returns the number of points registered per module.
    pub fn per_module_counts(&self) -> HashMap<&str, usize> {
        let mut counts = HashMap::new();
        for info in &self.points {
            *counts.entry(info.module.as_str()).or_insert(0) += 1;
        }
        counts
    }
}

impl fmt::Display for CoverageSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} coverage points)", self.design, self.points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_dense_stable_ids() {
        let mut space = CoverageSpace::new("core");
        let a = space.register_branch("decode", "is_branch", true);
        let b = space.register_branch("decode", "is_branch", false);
        let c = space.register_branch("lsu", "hit", true);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
        assert_eq!(space.len(), 3);
        // Re-registration returns the existing id.
        assert_eq!(space.register_branch("decode", "is_branch", true), a);
        assert_eq!(space.len(), 3);
    }

    #[test]
    fn register_site_creates_both_directions() {
        let mut space = CoverageSpace::new("core");
        let (t, f) = space.register_site("exec", "overflow");
        assert_ne!(t, f);
        assert!(space.info(t).unwrap().direction);
        assert!(!space.info(f).unwrap().direction);
    }

    #[test]
    fn lookup_and_info_agree() {
        let mut space = CoverageSpace::new("core");
        let id = space.register_branch("frontend", "btb_hit", true);
        assert_eq!(space.lookup("frontend", "btb_hit", true), Some(id));
        assert_eq!(space.lookup("frontend", "btb_hit", false), None);
        let info = space.info(id).unwrap();
        assert_eq!(info.module, "frontend");
        assert!(info.to_string().contains("btb_hit"));
    }

    #[test]
    fn per_module_counts() {
        let mut space = CoverageSpace::new("core");
        space.register_site("decode", "a");
        space.register_site("decode", "b");
        space.register_site("lsu", "c");
        let counts = space.per_module_counts();
        assert_eq!(counts["decode"], 4);
        assert_eq!(counts["lsu"], 2);
    }

    #[test]
    fn display_mentions_design_and_size() {
        let mut space = CoverageSpace::new("rocket");
        space.register_site("decode", "x");
        assert_eq!(space.to_string(), "rocket (2 coverage points)");
        assert!(!space.is_empty());
    }

    #[test]
    fn iteration_is_in_id_order() {
        let mut space = CoverageSpace::new("core");
        space.register_branch("m", "s1", true);
        space.register_branch("m", "s2", true);
        let ids: Vec<u32> = space.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
