//! Coverage-versus-tests time series (the data behind Fig. 3 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// One sample of a coverage curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Number of tests executed when the sample was taken.
    pub tests: u64,
    /// Cumulative number of coverage points reached.
    pub covered: usize,
}

/// A labelled coverage curve: cumulative coverage sampled as the campaign
/// progresses.
///
/// The experiment harness records one series per (fuzzer, processor) pair and
/// prints them side by side to regenerate Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageSeries {
    label: String,
    points: Vec<SeriesPoint>,
}

impl CoverageSeries {
    /// Creates an empty series with a human-readable label
    /// (e.g. `"MABFuzz: UCB on CVA6"`).
    pub fn new(label: impl Into<String>) -> CoverageSeries {
        CoverageSeries { label: label.into(), points: Vec::new() }
    }

    /// Returns the series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a sample. Samples must be appended in non-decreasing `tests`
    /// order; out-of-order samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `tests` is smaller than the previous sample's test count.
    pub fn record(&mut self, tests: u64, covered: usize) {
        if let Some(last) = self.points.last() {
            assert!(tests >= last.tests, "series samples must be recorded in order");
        }
        self.points.push(SeriesPoint { tests, covered });
    }

    /// Returns the recorded samples.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Returns the final cumulative coverage, or 0 for an empty series.
    pub fn final_coverage(&self) -> usize {
        self.points.last().map_or(0, |p| p.covered)
    }

    /// Returns the number of tests needed to reach `target` coverage points,
    /// or `None` when the series never reached it.
    pub fn tests_to_reach(&self, target: usize) -> Option<u64> {
        self.points.iter().find(|p| p.covered >= target).map(|p| p.tests)
    }

    /// Returns the coverage at a given test budget (the last sample at or
    /// before `tests`), or 0 when no sample has been taken yet.
    pub fn coverage_at(&self, tests: u64) -> usize {
        self.points
            .iter()
            .take_while(|p| p.tests <= tests)
            .last()
            .map_or(0, |p| p.covered)
    }

    /// Downsamples the series to at most `max_points` evenly spaced samples
    /// (always keeping the last), which keeps printed tables readable.
    pub fn downsample(&self, max_points: usize) -> CoverageSeries {
        if max_points == 0 || self.points.len() <= max_points {
            return self.clone();
        }
        let stride = self.points.len().div_ceil(max_points);
        let mut points: Vec<SeriesPoint> =
            self.points.iter().step_by(stride).copied().collect();
        if points.last() != self.points.last() {
            points.push(*self.points.last().expect("non-empty series"));
        }
        CoverageSeries { label: self.label.clone(), points }
    }
}

impl fmt::Display for CoverageSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} points after {} samples", self.label, self.final_coverage(), self.points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> CoverageSeries {
        let mut s = CoverageSeries::new("test");
        s.record(0, 0);
        s.record(10, 100);
        s.record(20, 150);
        s.record(30, 160);
        s
    }

    #[test]
    fn record_and_query() {
        let s = series();
        assert_eq!(s.label(), "test");
        assert_eq!(s.final_coverage(), 160);
        assert_eq!(s.points().len(), 4);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_samples_panic() {
        let mut s = series();
        s.record(5, 200);
    }

    #[test]
    fn tests_to_reach_finds_the_first_crossing() {
        let s = series();
        assert_eq!(s.tests_to_reach(100), Some(10));
        assert_eq!(s.tests_to_reach(151), Some(30));
        assert_eq!(s.tests_to_reach(1000), None);
    }

    #[test]
    fn coverage_at_returns_last_sample_before_budget() {
        let s = series();
        assert_eq!(s.coverage_at(0), 0);
        assert_eq!(s.coverage_at(15), 100);
        assert_eq!(s.coverage_at(30), 160);
        assert_eq!(s.coverage_at(1_000_000), 160);
        let empty = CoverageSeries::new("empty");
        assert_eq!(empty.coverage_at(10), 0);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut s = CoverageSeries::new("big");
        for i in 0..100u64 {
            s.record(i, i as usize);
        }
        let small = s.downsample(10);
        assert!(small.points().len() <= 11);
        assert_eq!(small.final_coverage(), 99);
        // Downsampling an already-small series is a no-op.
        assert_eq!(series().downsample(100), series());
    }

    #[test]
    fn display_summarises() {
        assert!(series().to_string().contains("160 points"));
    }
}
