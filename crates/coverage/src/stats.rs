//! Campaign-level coverage accumulation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::map::CoverageMap;
use crate::space::CoverPointId;

/// Cumulative coverage across an entire fuzzing campaign.
///
/// The fuzzer feeds every per-test [`CoverageMap`] into
/// [`absorb`](CumulativeCoverage::absorb), which returns the *globally new*
/// points that test contributed — exactly the `cov_G` term of the MABFuzz
/// reward — and updates the running union.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CumulativeCoverage {
    union: CoverageMap,
    tests_absorbed: u64,
    history: Vec<usize>,
}

impl CumulativeCoverage {
    /// Creates an empty accumulator for a coverage space with `len` points.
    pub fn new(len: usize) -> CumulativeCoverage {
        CumulativeCoverage { union: CoverageMap::with_len(len), tests_absorbed: 0, history: Vec::new() }
    }

    /// Returns the union coverage map accumulated so far.
    pub fn map(&self) -> &CoverageMap {
        &self.union
    }

    /// Returns the number of distinct points covered so far.
    pub fn count(&self) -> usize {
        self.union.count()
    }

    /// Returns the covered fraction of the space.
    pub fn ratio(&self) -> f64 {
        self.union.ratio()
    }

    /// Returns the number of per-test maps absorbed.
    pub fn tests_absorbed(&self) -> u64 {
        self.tests_absorbed
    }

    /// Returns the points in `test_map` that were not covered by any earlier
    /// test, then merges `test_map` into the accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `test_map` belongs to a space of a different size.
    pub fn absorb(&mut self, test_map: &CoverageMap) -> Vec<CoverPointId> {
        let new_points = test_map.newly_covered(&self.union);
        self.union.union_with(test_map);
        self.tests_absorbed += 1;
        self.history.push(self.union.count());
        new_points
    }

    /// Like [`absorb`](CumulativeCoverage::absorb) but only returns *how
    /// many* points were globally new, without materialising their ids.
    ///
    /// This is the fuzzing hot path: the MABFuzz reward needs only the
    /// count (`|cov_G|`), so the union and the delta count are computed in a
    /// single pass over the bitmap words with no per-test allocation. The
    /// underlying [`CoverageMap::merge_counting`] is the same associative
    /// merge the sharded campaign uses, so absorbing tests one by one in
    /// `test_index` order is exactly the ordered reduction of the shard
    /// determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if `test_map` belongs to a space of a different size.
    pub fn absorb_count(&mut self, test_map: &CoverageMap) -> usize {
        let new_points = self.union.merge_counting(test_map);
        self.tests_absorbed += 1;
        self.history.push(self.union.count());
        new_points
    }

    /// Returns the points in `test_map` not yet covered globally, *without*
    /// absorbing the map.
    pub fn peek_new(&self, test_map: &CoverageMap) -> Vec<CoverPointId> {
        test_map.newly_covered(&self.union)
    }

    /// Returns the cumulative coverage count after each absorbed test.
    pub fn history(&self) -> &[usize] {
        &self.history
    }

    /// Returns the smallest number of absorbed tests after which the
    /// cumulative count reached `target`, or `None` if it never did.
    ///
    /// This is the primitive behind the paper's *coverage speedup* metric
    /// (Fig. 4): speedup = tests the baseline needed / tests this campaign
    /// needed to reach the same coverage.
    pub fn tests_to_reach(&self, target: usize) -> Option<u64> {
        self.history.iter().position(|&c| c >= target).map(|i| i as u64 + 1)
    }
}

impl fmt::Display for CumulativeCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} points after {} tests ({:.2}%)",
            self.count(),
            self.tests_absorbed,
            self.ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map_with(len: usize, ids: &[u32]) -> CoverageMap {
        let mut map = CoverageMap::with_len(len);
        for &i in ids {
            map.cover(CoverPointId(i));
        }
        map
    }

    #[test]
    fn absorb_reports_only_globally_new_points() {
        let mut cumulative = CumulativeCoverage::new(64);
        let first = cumulative.absorb(&map_with(64, &[1, 2, 3]));
        assert_eq!(first.len(), 3);
        let second = cumulative.absorb(&map_with(64, &[2, 3, 4]));
        assert_eq!(second, vec![CoverPointId(4)]);
        assert_eq!(cumulative.count(), 4);
        assert_eq!(cumulative.tests_absorbed(), 2);
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut cumulative = CumulativeCoverage::new(16);
        cumulative.absorb(&map_with(16, &[0]));
        let peeked = cumulative.peek_new(&map_with(16, &[0, 5]));
        assert_eq!(peeked, vec![CoverPointId(5)]);
        assert_eq!(cumulative.count(), 1, "peek must not absorb");
    }

    #[test]
    fn history_tracks_cumulative_counts() {
        let mut cumulative = CumulativeCoverage::new(32);
        cumulative.absorb(&map_with(32, &[0, 1]));
        cumulative.absorb(&map_with(32, &[1]));
        cumulative.absorb(&map_with(32, &[9]));
        assert_eq!(cumulative.history(), &[2, 2, 3]);
        assert_eq!(cumulative.tests_to_reach(2), Some(1));
        assert_eq!(cumulative.tests_to_reach(3), Some(3));
        assert_eq!(cumulative.tests_to_reach(4), None);
    }

    #[test]
    fn display_summarises_progress() {
        let mut cumulative = CumulativeCoverage::new(10);
        cumulative.absorb(&map_with(10, &[0, 1, 2, 3, 4]));
        assert!(cumulative.to_string().contains("5 points after 1 tests"));
        assert!((cumulative.ratio() - 0.5).abs() < 1e-12);
    }

    proptest! {
        /// The cumulative count is monotonically non-decreasing and never
        /// exceeds the space size.
        #[test]
        fn cumulative_count_is_monotone(
            tests in proptest::collection::vec(proptest::collection::vec(0u32..200, 0..32), 1..20)
        ) {
            let mut cumulative = CumulativeCoverage::new(200);
            let mut previous = 0;
            for ids in &tests {
                cumulative.absorb(&map_with(200, ids));
                let now = cumulative.count();
                prop_assert!(now >= previous);
                prop_assert!(now <= 200);
                previous = now;
            }
        }

        /// The sum of per-test new points equals the final cumulative count.
        #[test]
        fn new_points_sum_to_total(
            tests in proptest::collection::vec(proptest::collection::vec(0u32..100, 0..16), 0..16)
        ) {
            let mut cumulative = CumulativeCoverage::new(100);
            let mut total_new = 0;
            for ids in &tests {
                total_new += cumulative.absorb(&map_with(100, ids)).len();
            }
            prop_assert_eq!(total_new, cumulative.count());
        }
    }
}
