//! Per-test coverage bitmaps.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::space::{CoverPointId, CoverageSpace};

/// A fixed-size bitmap recording which coverage points one simulation hit.
///
/// Maps are only meaningfully comparable when they were created for the same
/// [`CoverageSpace`]; the length is fixed at creation.
///
/// The map maintains an incremental population count, so
/// [`count`](CoverageMap::count) is O(1) — the fuzzing hot loop queries the
/// count after every absorbed test and must not rescan the bitmap each time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoverageMap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl CoverageMap {
    /// Creates an all-zero map with capacity for `len` coverage points.
    pub fn with_len(len: usize) -> CoverageMap {
        CoverageMap { words: vec![0; len.div_ceil(64)], len, ones: 0 }
    }

    /// Creates an all-zero map sized for `space`.
    pub fn for_space(space: &CoverageSpace) -> CoverageMap {
        CoverageMap::with_len(space.len())
    }

    /// Returns the number of coverage points the map can record.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the map has no capacity (an empty space).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks a coverage point as hit. Out-of-range ids are ignored, so a map
    /// built for a smaller space never panics when replaying foreign ids.
    #[inline]
    pub fn cover(&mut self, id: CoverPointId) {
        let index = id.index();
        if index < self.len {
            let word = &mut self.words[index / 64];
            let bit = 1 << (index % 64);
            self.ones += usize::from(*word & bit == 0);
            *word |= bit;
        }
    }

    /// Returns whether a coverage point has been hit.
    #[inline]
    pub fn is_covered(&self, id: CoverPointId) -> bool {
        let index = id.index();
        index < self.len && (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Returns the number of points hit. O(1): the count is maintained
    /// incrementally.
    #[inline]
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Returns the fraction of the space covered, in `0.0..=1.0`.
    pub fn ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count() as f64 / self.len as f64
        }
    }

    /// Merges another map into this one (set union).
    ///
    /// # Panics
    ///
    /// Panics if the maps were created with different lengths.
    pub fn union_with(&mut self, other: &CoverageMap) {
        self.union_count_new(other);
    }

    /// Merges another map into this one (set union) and returns how many of
    /// `other`'s points were new to `self` — the fused form of
    /// [`count_new`](CoverageMap::count_new) + [`union_with`](CoverageMap::union_with)
    /// the fuzzers' reward path uses (one pass over the words instead of two,
    /// no intermediate id vector).
    ///
    /// Alias of [`merge_counting`](CoverageMap::merge_counting), kept for the
    /// pre-sharding callers.
    ///
    /// # Panics
    ///
    /// Panics if the maps were created with different lengths.
    pub fn union_count_new(&mut self, other: &CoverageMap) -> usize {
        self.merge_counting(other)
    }

    /// Merges another map into this one (set union) and returns how many of
    /// `other`'s points were new to `self`.
    ///
    /// This is the **associative reduce** of the sharded campaign: per-test
    /// and per-shard coverage maps are folded into cumulative maps with it,
    /// and because set union is associative and commutative the final union
    /// is independent of how tests were distributed over shards. (The
    /// *return value* — the novelty delta — is order-sensitive, which is why
    /// the campaign folds observations in `test_index` order; see the
    /// determinism contract in `fuzzer::shard`.)
    ///
    /// # Panics
    ///
    /// Panics if the maps were created with different lengths.
    pub fn merge_counting(&mut self, other: &CoverageMap) -> usize {
        assert_eq!(self.len, other.len, "coverage maps belong to different spaces");
        let mut new_points = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            new_points += (b & !*a).count_ones() as usize;
            *a |= b;
        }
        self.ones += new_points;
        new_points
    }

    /// Returns the ids set in `self` but not in `baseline` — the *new* points
    /// this test contributed relative to the baseline.
    ///
    /// # Panics
    ///
    /// Panics if the maps were created with different lengths.
    pub fn newly_covered(&self, baseline: &CoverageMap) -> Vec<CoverPointId> {
        assert_eq!(self.len, baseline.len, "coverage maps belong to different spaces");
        let mut new_points = Vec::new();
        for (word_idx, (a, b)) in self.words.iter().zip(&baseline.words).enumerate() {
            let mut fresh = a & !b;
            while fresh != 0 {
                let bit = fresh.trailing_zeros() as usize;
                new_points.push(CoverPointId((word_idx * 64 + bit) as u32));
                fresh &= fresh - 1;
            }
        }
        new_points
    }

    /// Returns the number of points set in `self` but not in `baseline`.
    pub fn count_new(&self, baseline: &CoverageMap) -> usize {
        assert_eq!(self.len, baseline.len, "coverage maps belong to different spaces");
        self.words
            .iter()
            .zip(&baseline.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Returns an iterator over the covered point ids, in increasing order.
    pub fn iter_covered(&self) -> impl Iterator<Item = CoverPointId> + '_ {
        self.words.iter().enumerate().flat_map(|(word_idx, word)| {
            let mut word = *word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(CoverPointId((word_idx * 64 + bit) as u32))
                }
            })
        })
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Makes `self` an exact copy of `other`, reusing `self`'s word
    /// allocation whenever its capacity suffices.
    ///
    /// This is the buffer-recycling counterpart of `clone()`: the pooled
    /// shard workers refill returned [`CoverageMap`]s with it instead of
    /// allocating a fresh bitmap per test. (The derived `Clone` does not
    /// override `clone_from`, so a plain `clone_from` call would still
    /// allocate.)
    pub fn copy_from(&mut self, other: &CoverageMap) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
        self.ones = other.ones;
    }

    /// Reshapes the map for a space with `len` points and clears it, reusing
    /// the existing allocation whenever it is large enough.
    pub fn reset_for_len(&mut self, len: usize) {
        self.clear();
        self.len = len;
        self.words.resize(len.div_ceil(64), 0);
    }
}

impl fmt::Display for CoverageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} points covered ({:.2}%)", self.count(), self.len, self.ratio() * 100.0)
    }
}

impl FromIterator<CoverPointId> for CoverageMap {
    /// Builds a map just large enough to hold the maximum id in the iterator,
    /// growing the bitmap in a single pass (no intermediate id vector).
    fn from_iter<T: IntoIterator<Item = CoverPointId>>(iter: T) -> Self {
        let mut map = CoverageMap::with_len(0);
        for id in iter {
            let index = id.index();
            if index >= map.len {
                map.len = index + 1;
                let words_needed = map.len.div_ceil(64);
                if map.words.len() < words_needed {
                    map.words.resize(words_needed, 0);
                }
            }
            map.cover(id);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn id(i: u32) -> CoverPointId {
        CoverPointId(i)
    }

    #[test]
    fn cover_and_query() {
        let mut map = CoverageMap::with_len(130);
        assert_eq!(map.len(), 130);
        map.cover(id(0));
        map.cover(id(64));
        map.cover(id(129));
        assert!(map.is_covered(id(0)));
        assert!(map.is_covered(id(64)));
        assert!(map.is_covered(id(129)));
        assert!(!map.is_covered(id(1)));
        assert_eq!(map.count(), 3);
        assert!((map.ratio() - 3.0 / 130.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_ids_are_ignored() {
        let mut map = CoverageMap::with_len(10);
        map.cover(id(1000));
        assert_eq!(map.count(), 0);
        assert!(!map.is_covered(id(1000)));
    }

    #[test]
    fn union_accumulates() {
        let mut a = CoverageMap::with_len(70);
        let mut b = CoverageMap::with_len(70);
        a.cover(id(3));
        b.cover(id(3));
        b.cover(id(69));
        a.union_with(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    #[should_panic(expected = "different spaces")]
    fn union_of_mismatched_maps_panics() {
        let mut a = CoverageMap::with_len(10);
        let b = CoverageMap::with_len(20);
        a.union_with(&b);
    }

    #[test]
    fn newly_covered_reports_the_delta() {
        let mut cumulative = CoverageMap::with_len(100);
        cumulative.cover(id(5));
        cumulative.cover(id(40));
        let mut test = CoverageMap::with_len(100);
        test.cover(id(5));
        test.cover(id(41));
        test.cover(id(99));
        let new_points = test.newly_covered(&cumulative);
        assert_eq!(new_points, vec![id(41), id(99)]);
        assert_eq!(test.count_new(&cumulative), 2);
        assert_eq!(cumulative.count_new(&test), 1);
    }

    #[test]
    fn iter_covered_is_sorted_and_complete() {
        let mut map = CoverageMap::with_len(200);
        for i in [0u32, 63, 64, 65, 128, 199] {
            map.cover(id(i));
        }
        let covered: Vec<u32> = map.iter_covered().map(|p| p.0).collect();
        assert_eq!(covered, vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut map = CoverageMap::with_len(32);
        map.cover(id(7));
        map.clear();
        assert_eq!(map.count(), 0);
    }

    #[test]
    fn copy_from_equals_clone_even_across_sizes() {
        let mut source = CoverageMap::with_len(200);
        source.cover(id(3));
        source.cover(id(150));
        for target_len in [0usize, 64, 200, 1000] {
            let mut target = CoverageMap::with_len(target_len);
            target.cover(id(1));
            target.copy_from(&source);
            assert_eq!(target, source);
            assert_eq!(target.count(), 2);
            assert_eq!(target.len(), 200);
        }
    }

    #[test]
    fn from_iterator_sizes_to_max_id() {
        let map: CoverageMap = [id(2), id(17)].into_iter().collect();
        assert_eq!(map.len(), 18);
        assert_eq!(map.count(), 2);
        let empty: CoverageMap = std::iter::empty().collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn display_reports_percentages() {
        let mut map = CoverageMap::with_len(4);
        map.cover(id(1));
        assert_eq!(map.to_string(), "1/4 points covered (25.00%)");
    }

    proptest! {
        /// count() equals the number of distinct covered ids.
        #[test]
        fn count_matches_distinct_ids(ids in proptest::collection::vec(0u32..500, 0..100)) {
            let mut map = CoverageMap::with_len(500);
            for i in &ids {
                map.cover(id(*i));
            }
            let distinct: std::collections::HashSet<_> = ids.iter().collect();
            prop_assert_eq!(map.count(), distinct.len());
        }

        /// newly_covered against an empty baseline returns exactly the covered set.
        #[test]
        fn delta_against_empty_is_identity(ids in proptest::collection::vec(0u32..256, 0..64)) {
            let mut map = CoverageMap::with_len(256);
            for i in &ids {
                map.cover(id(*i));
            }
            let empty = CoverageMap::with_len(256);
            let delta: Vec<_> = map.newly_covered(&empty);
            let covered: Vec<_> = map.iter_covered().collect();
            prop_assert_eq!(delta, covered);
        }

        /// merge_counting is associative and order-insensitive in the final
        /// union (the property the sharded campaign's shard-count
        /// independence rests on), and its novelty deltas always account for
        /// exactly the final population count.
        #[test]
        fn merge_counting_is_associative_and_accounts_novelty(
            a_ids in proptest::collection::vec(0u32..192, 0..40),
            b_ids in proptest::collection::vec(0u32..192, 0..40),
            c_ids in proptest::collection::vec(0u32..192, 0..40),
        ) {
            let build = |ids: &[u32]| {
                let mut map = CoverageMap::with_len(192);
                for i in ids { map.cover(id(*i)); }
                map
            };
            let (a, b, c) = (build(&a_ids), build(&b_ids), build(&c_ids));

            // Fold left-to-right and in a shard-like permutation.
            let mut ordered = CoverageMap::with_len(192);
            let delta_sum = ordered.merge_counting(&a)
                + ordered.merge_counting(&b)
                + ordered.merge_counting(&c);
            let mut permuted = CoverageMap::with_len(192);
            permuted.merge_counting(&c);
            permuted.merge_counting(&a);
            permuted.merge_counting(&b);
            prop_assert_eq!(&ordered, &permuted);
            prop_assert_eq!(delta_sum, ordered.count());

            // Associativity: (a ∪ b) ∪ c == a ∪ (b ∪ c).
            let mut left = a.clone();
            left.merge_counting(&b);
            left.merge_counting(&c);
            let mut bc = b.clone();
            bc.merge_counting(&c);
            let mut right = a.clone();
            right.merge_counting(&bc);
            prop_assert_eq!(left, right);
        }

        /// union is idempotent and monotone in coverage count.
        #[test]
        fn union_is_monotone(
            a_ids in proptest::collection::vec(0u32..128, 0..40),
            b_ids in proptest::collection::vec(0u32..128, 0..40),
        ) {
            let mut a = CoverageMap::with_len(128);
            for i in &a_ids { a.cover(id(*i)); }
            let mut b = CoverageMap::with_len(128);
            for i in &b_ids { b.cover(id(*i)); }
            let before = a.count();
            a.union_with(&b);
            prop_assert!(a.count() >= before);
            prop_assert!(a.count() >= b.count());
            let snapshot = a.clone();
            a.union_with(&b);
            prop_assert_eq!(a, snapshot);
        }
    }
}
