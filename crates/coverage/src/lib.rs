//! Branch-coverage substrate shared by the processor models and the fuzzers.
//!
//! Hardware fuzzers steer themselves with coverage feedback: every simulated
//! test returns the set of *coverage points* (here, branch-coverage points:
//! each direction of every modelled decision) it activated, and the fuzzer
//! compares that set against what has already been reached. This crate
//! provides the three pieces of that machinery:
//!
//! * [`CoverageSpace`] — the registry of coverage points a design exposes,
//!   built once when a processor model is constructed;
//! * [`CoverageMap`] — a fixed-size bitmap over a space, filled during one
//!   simulation and cheap to union/diff;
//! * [`CumulativeCoverage`] and [`CoverageSeries`] — campaign-level
//!   accumulation and the coverage-versus-tests time series that Fig. 3 of
//!   the paper plots.
//!
//! # Example
//!
//! ```
//! use coverage::{CoverageSpace, CoverageMap};
//!
//! let mut space = CoverageSpace::new("toy");
//! let taken = space.register_branch("decoder", "is_load", true);
//! let not_taken = space.register_branch("decoder", "is_load", false);
//!
//! let mut map = CoverageMap::for_space(&space);
//! map.cover(taken);
//! assert!(map.is_covered(taken));
//! assert!(!map.is_covered(not_taken));
//! assert_eq!(map.count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edge;
pub mod map;
pub mod series;
pub mod space;
pub mod stats;

pub use edge::EdgeSpace;
pub use map::CoverageMap;
pub use series::{CoverageSeries, SeriesPoint};
pub use space::{CoverPointId, CoverPointInfo, CoverageSpace};
pub use stats::CumulativeCoverage;
