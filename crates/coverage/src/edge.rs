//! A fixed-size coverage space over static CFG edges.
//!
//! The edge-coverage signal hashes each static CFG edge's identity tuple
//! `(from_pc, to, kind)` into a fixed-length slot space. Fixing the length up
//! front is what lets edge coverage slot into the shard determinism contract:
//! every per-test [`CoverageMap`](crate::CoverageMap) over an [`EdgeSpace`]
//! has the same length regardless of which program it came from, so the
//! ordered shard fold can union them exactly like point-coverage maps.
//!
//! The hash is FNV-1a over a fixed-width little-endian encoding of the tuple,
//! so a slot is a pure function of the edge identity — stable across runs,
//! shards, processes and platforms (the *edge-id stability guarantee*; see
//! the `analysis` crate docs). Distinct edges may collide in the space, which
//! is the standard AFL-style trade-off; the default length keeps the load
//! factor low for the program sizes the generator produces.

use serde::{Deserialize, Serialize};

use crate::space::CoverPointId;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A fixed-length hashed space of static CFG edge coverage slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeSpace {
    len: usize,
}

impl EdgeSpace {
    /// The default slot count: comfortably above the edge counts of generated
    /// programs (tens of edges), keeping hash collisions rare.
    pub const DEFAULT_LEN: usize = 4096;

    /// Creates the default-size space.
    pub fn new() -> EdgeSpace {
        EdgeSpace { len: EdgeSpace::DEFAULT_LEN }
    }

    /// Creates a space with an explicit slot count (must be non-zero).
    pub fn with_len(len: usize) -> EdgeSpace {
        assert!(len > 0, "edge space needs at least one slot");
        EdgeSpace { len }
    }

    /// Number of slots; the length of every coverage map over this space.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the space has no slots (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hashes an edge identity tuple to its coverage slot.
    ///
    /// `kind` is the edge kind's stable wire code (`analysis::EdgeKind::code`)
    /// and `to` is `None` for the synthetic `Unknown` sink. The encoding is
    /// fixed-width (8-byte LE pcs, a presence tag, the kind byte) so no two
    /// distinct tuples encode to the same byte string.
    pub fn slot(&self, from_pc: u64, to: Option<u64>, kind: u8) -> CoverPointId {
        let mut hash = FNV_OFFSET_BASIS;
        let mut eat = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        for byte in from_pc.to_le_bytes() {
            eat(byte);
        }
        eat(u8::from(to.is_some()));
        for byte in to.unwrap_or(0).to_le_bytes() {
            eat(byte);
        }
        eat(kind);
        CoverPointId((hash % self.len as u64) as u32)
    }
}

impl Default for EdgeSpace {
    fn default() -> EdgeSpace {
        EdgeSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoverageMap;

    #[test]
    fn slots_are_stable_and_in_range() {
        let space = EdgeSpace::new();
        let a = space.slot(0x8000_0000, Some(0x8000_0004), 0);
        assert_eq!(a, space.slot(0x8000_0000, Some(0x8000_0004), 0));
        assert!((a.index()) < space.len());
    }

    #[test]
    fn tuple_components_distinguish_slots() {
        // Not guaranteed for every input (hashing), but these particular
        // tuples must stay distinct or the signal would be degenerate.
        let space = EdgeSpace::new();
        let base = space.slot(0x8000_0000, Some(0x8000_0004), 0);
        assert_ne!(base, space.slot(0x8000_0004, Some(0x8000_0004), 0));
        assert_ne!(base, space.slot(0x8000_0000, Some(0x8000_0008), 0));
        assert_ne!(base, space.slot(0x8000_0000, Some(0x8000_0004), 1));
        assert_ne!(base, space.slot(0x8000_0000, None, 0));
    }

    #[test]
    fn unknown_sink_differs_from_a_zero_target() {
        // The presence tag keeps `None` distinct from `Some(0)`.
        let space = EdgeSpace::new();
        assert_ne!(space.slot(0x8000_0000, None, 2), space.slot(0x8000_0000, Some(0), 2));
    }

    #[test]
    fn maps_over_the_space_merge_like_point_coverage() {
        let space = EdgeSpace::with_len(64);
        let mut a = CoverageMap::with_len(space.len());
        let mut b = CoverageMap::with_len(space.len());
        a.cover(space.slot(0x8000_0000, Some(0x8000_0010), 1));
        b.cover(space.slot(0x8000_0010, None, 3));
        let mut merged = CoverageMap::with_len(space.len());
        merged.union_with(&a);
        merged.union_with(&b);
        assert_eq!(merged.count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_length_space_is_rejected() {
        EdgeSpace::with_len(0);
    }
}
