//! Umbrella crate for the MABFuzz reproduction workspace.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! directories have a package to hang off; it simply re-exports every
//! workspace crate under one roof.
//!
//! ```
//! use mabfuzz_suite::riscv::{Gpr, Instr, Op};
//!
//! let nop = Instr::nop();
//! assert_eq!(nop.op, Op::Addi);
//! assert_eq!(nop.rd, Gpr::Zero);
//! ```

pub use analysis;
pub use coverage;
pub use fuzzer;
pub use isa_sim;
pub use mab;
pub use mabfuzz;
pub use proc_sim;
pub use riscv;
