//! `detlint`: a determinism lint for artefact-producing code.
//!
//! Every published artefact of this workspace — experiment reports, event
//! streams, goldens — carries a byte-identity contract (see the determinism
//! contract in `fuzzer::shard`). Two std constructs silently break that
//! contract when they creep into artefact paths:
//!
//! * **`default-hasher`** — `HashMap`/`HashSet` with the default
//!   `RandomState` hasher: iteration order varies per process, so any
//!   artefact rendered from an iteration is nondeterministic.
//! * **`wall-clock`** — `Instant`/`SystemTime`: readings differ per run, so
//!   any artefact embedding one is nondeterministic.
//!
//! The lint is a plain std-only source scanner (no syntax tree, no
//! dependencies): it walks the artefact-producing crates' `src/` trees,
//! cuts each file at its first `#[cfg(test)]` line (workspace convention:
//! unit tests sit at the end of the file), and reports every whole-word
//! occurrence outside a `use` declaration's plain import list. Benign sites
//! are waived in the source itself:
//!
//! * `// detlint: allow(<rule>)` on the offending line or the line above
//!   waives one site;
//! * `// detlint: allow-file(<rule>)` anywhere in the file waives the whole
//!   file — reserved for files whose every use is justified by one argument
//!   (say, a map that is only probed, never iterated into an artefact).
//!
//! A waiver states that the construct cannot reach artefact bytes; the
//! reviewer of the waiver line is the enforcement point. Non-artefact crates
//! (`service`: live network I/O; the vendored `shims/`; this `src/bin`
//! directory) are out of scope.
//!
//! Exit status: 0 when clean, 1 with one `path:line: [rule] ...` diagnostic
//! per finding when not — CI runs it as a hard gate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The scanned crate roots, relative to the workspace root: every crate
/// whose code can run while an artefact is produced.
const SCAN_ROOTS: &[&str] = &[
    "crates/riscv/src",
    "crates/analysis/src",
    "crates/coverage/src",
    "crates/isa-sim/src",
    "crates/proc-sim/src",
    "crates/mab/src",
    "crates/fuzzer/src",
    "crates/core/src",
    "crates/bench/src",
    "src/lib.rs",
];

/// One lint rule: a name (used in waivers and diagnostics) and the
/// whole-word tokens that trigger it.
struct Rule {
    name: &'static str,
    tokens: &'static [&'static str],
    message: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        name: "default-hasher",
        tokens: &["HashMap", "HashSet"],
        message: "default-hasher map: iteration order is per-process random; \
                  use a BTreeMap/Vec, avoid iterating into artefacts, or waive",
    },
    Rule {
        name: "wall-clock",
        tokens: &["Instant", "SystemTime"],
        message: "wall-clock reading: differs per run; keep it out of \
                  artefact bytes or waive",
    },
];

fn main() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for entry in SCAN_ROOTS {
        let path = root.join(entry);
        if path.is_file() {
            files.push(path);
        } else {
            collect_rust_files(&path, &mut files);
        }
    }
    files.sort();

    let mut findings = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("detlint: {}: {error}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let display = file.strip_prefix(&root).unwrap_or(file);
        findings += scan_file(&text, &display.display().to_string());
    }
    if findings > 0 {
        eprintln!("detlint: {findings} finding(s) in {} file(s) scanned", files.len());
        return ExitCode::FAILURE;
    }
    println!("detlint: clean ({} files scanned)", files.len());
    ExitCode::SUCCESS
}

/// The workspace root: the directory this binary's manifest lives in (via
/// `CARGO_MANIFEST_DIR` under `cargo run`), else the current directory.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from)
}

fn collect_rust_files(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, files);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
}

/// Scans one file, printing a diagnostic per finding; returns the count.
fn scan_file(text: &str, path: &str) -> usize {
    let lines: Vec<&str> = text.lines().collect();
    // Unit tests sit at the end of the file by workspace convention; the
    // lint stops at the marker so test-only helpers stay unconstrained.
    let end = lines
        .iter()
        .position(|line| line.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len());

    let mut findings = 0;
    for rule in RULES {
        if file_waived(&lines, rule.name) {
            continue;
        }
        for (number, line) in lines.iter().enumerate().take(end) {
            if !rule.tokens.iter().any(|token| has_word(line, token)) {
                continue;
            }
            // A plain `use std::collections::HashMap;` line only names the
            // type; the construction/annotation sites are what matter.
            if line.trim_start().starts_with("use ") {
                continue;
            }
            if line_waived(&lines, number, rule.name) {
                continue;
            }
            println!("{path}:{}: [{}] {}", number + 1, rule.name, rule.message);
            findings += 1;
        }
    }
    findings
}

/// Whole-word containment: `token` occurs with no identifier character on
/// either side ("Instantiates" must not trigger the `Instant` token).
fn has_word(line: &str, token: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(found) = line[start..].find(token) {
        let at = start + found;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let end = at + token.len();
        let after_ok = end >= bytes.len()
            || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

fn has_marker(line: &str, marker: &str) -> bool {
    line.contains(&format!("// detlint: {marker}"))
}

fn file_waived(lines: &[&str], rule: &str) -> bool {
    lines.iter().any(|line| has_marker(line, &format!("allow-file({rule})")))
}

fn line_waived(lines: &[&str], number: usize, rule: &str) -> bool {
    let marker = format!("allow({rule})");
    has_marker(lines[number], &marker)
        || (number > 0 && has_marker(lines[number - 1], &marker))
}
