//! Compile-time thread-safety contract of the campaign state.
//!
//! The `mab::Bandit` trait has carried a `Send` supertrait since the seed,
//! but until the sharded campaign nothing actually moved campaign state
//! across threads, so a regression (an `Rc`, a raw pointer, a non-`Send`
//! trait object slipped into a field) would have compiled fine and only
//! exploded later. Now two things depend on these bounds at compile time:
//! the grid executor sends whole campaigns to worker threads, and the shard
//! pool sends `FuzzHarness` clones plus per-test outcomes both ways. These
//! assertions pin every link of that chain individually, so a violation
//! names the exact type that regressed instead of failing somewhere inside
//! a `thread::spawn` bound.

use mabfuzz_suite::coverage::{CoverageMap, CoverageSeries, CumulativeCoverage};
use mabfuzz_suite::fuzzer::{
    CampaignStats, ExecScratch, FuzzHarness, MutationEngine, SeedGenerator, ShardPlan, ShardPool,
    TestCase, TestOutcome, TestPool, TheHuzzFuzzer,
};
use mabfuzz_suite::mab::{Bandit, EpsilonGreedy, Exp3, Ucb1};
use mabfuzz_suite::mabfuzz::{
    Arm, Campaign, CampaignObserver, CampaignSpec, MabFuzzOutcome, MabFuzzer, SaturationMonitor,
};
use mabfuzz_suite::proc_sim::{DutResult, Processor, SimScratch};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}
fn assert_send_value<T: Send>(_value: &T) {}

#[test]
fn campaign_state_is_send() {
    // The fuzzers themselves: what the grid executor moves to its workers.
    assert_send::<MabFuzzer>();
    assert_send::<TheHuzzFuzzer>();
    assert_send::<MabFuzzOutcome>();

    // The session redesign: assembled campaigns (observers included — the
    // trait carries a `Send` supertrait exactly for this), and the specs
    // the grid fans out.
    assert_send::<Campaign>();
    assert_send::<CampaignSpec>();
    assert_send::<Box<dyn CampaignObserver>>();

    // The pieces a campaign is assembled from.
    assert_send::<FuzzHarness>();
    assert_send::<ExecScratch>();
    assert_send::<CampaignStats>();
    assert_send::<Arm>();
    assert_send::<SaturationMonitor>();
    assert_send::<SeedGenerator>();
    assert_send::<MutationEngine>();
    assert_send::<TestCase>();
    assert_send::<TestPool>();

    // What crosses the shard-pool channels.
    assert_send::<ShardPool>();
    assert_send::<ShardPlan>();
    assert_send::<TestOutcome>();
    assert_send::<CoverageMap>();
    assert_send::<SimScratch>();
    assert_send::<DutResult>();

    // Reduction state.
    assert_send::<CumulativeCoverage>();
    assert_send::<CoverageSeries>();
}

#[test]
fn bandit_trait_objects_are_send() {
    // `Bandit: Send` is a supertrait, so boxed policies — including the
    // campaign's `Box<dyn Bandit>` field — must be `Send` as trait objects,
    // not just as concrete types.
    assert_send::<Box<dyn Bandit>>();
    assert_send::<EpsilonGreedy>();
    assert_send::<Ucb1>();
    assert_send::<Exp3>();
    let boxed: Box<dyn Bandit> = Box::new(Ucb1::new(3));
    assert_send_value(&boxed);
}

#[test]
fn shared_processor_handles_are_send_and_sync() {
    // `Arc<dyn Processor>` is cloned into every shard worker, which needs
    // both `Send` (the Arc moves) and `Sync` (the processor is shared).
    assert_send::<std::sync::Arc<dyn Processor>>();
    assert_sync::<std::sync::Arc<dyn Processor>>();
    assert_sync::<FuzzHarness>();
}
