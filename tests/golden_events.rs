//! Golden-pinned JSONL event streams and the shard-count invariance of the
//! observer seam.
//!
//! Two streams are checked in under `tests/golden/`:
//!
//! * `events_mabfuzz_smoke.jsonl` — the event stream of the checked-in
//!   `campaign_spec.json` campaign (smoke-budget UCB on rocket, the same
//!   campaign `experiments run --spec` replays); CI `cmp`s the binary's
//!   `--events` output against it at `--shards 1` **and** `--shards 4`;
//! * `events_baseline_smoke.jsonl` — a small TheHuzz baseline campaign,
//!   pinning the per-test protocol the instrumented FIFO loop emits.
//!
//! Re-bless with `UPDATE_GOLDEN=1 cargo test --test golden_events` (like the
//! experiments golden) and justify the re-baseline in the PR description.

use std::path::PathBuf;

use mabfuzz_bench::{campaign_config, campaign_spec, FuzzerKind, ShardPlan};
use mabfuzz_suite::mab::BanditKind;
use mabfuzz_suite::mabfuzz::{
    BugSpec, Campaign, CampaignSpec, EventLog, ProcessorSpec, SharedBuffer,
};
use mabfuzz_suite::proc_sim::ProcessorKind;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs `spec` with an in-memory [`EventLog`] attached and returns the JSONL
/// stream it wrote.
fn event_stream(spec: &CampaignSpec) -> String {
    let buffer = SharedBuffer::new();
    let log = EventLog::new(buffer.clone());
    let health = log.health();
    Campaign::from_spec(spec)
        .expect("self-contained spec")
        .with_observer(Box::new(log))
        .execute();
    assert!(!health.failed(), "in-memory writes cannot fail");
    buffer.contents()
}

fn compare_against_golden(stream: &str, file: &str) {
    let path = golden_dir().join(file);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, stream).expect("write golden event stream");
        eprintln!("re-blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "missing golden event stream {} ({error}); run UPDATE_GOLDEN=1 cargo test \
             --test golden_events to create it",
            path.display()
        )
    });
    if stream != golden {
        for (index, (have, want)) in stream.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                have,
                want,
                "event stream line {} diverged from tests/golden/{file} — the fold order, \
                 the event vocabulary or the JSONL renderer changed. If intentional, re-bless \
                 with UPDATE_GOLDEN=1 and justify the re-baseline.",
                index + 1
            );
        }
        panic!(
            "event stream line count changed: {} rendered vs {} golden (tests/golden/{file})",
            stream.lines().count(),
            golden.lines().count()
        );
    }
}

/// The checked-in smoke spec (what `experiments run --spec
/// tests/golden/campaign_spec.json` executes).
fn mabfuzz_smoke_spec() -> CampaignSpec {
    let text = std::fs::read_to_string(golden_dir().join("campaign_spec.json"))
        .expect("campaign_spec.json present");
    CampaignSpec::from_json(&text).expect("the checked-in spec parses")
}

/// A small baseline campaign on the same substrate: TheHuzz on rocket with
/// native bugs, 80 tests, seed 7.
fn baseline_smoke_spec() -> CampaignSpec {
    let mut spec = campaign_spec(FuzzerKind::TheHuzz, campaign_config(80), 7, &ShardPlan::serial());
    spec.processor = Some(ProcessorSpec { core: ProcessorKind::Rocket, bugs: BugSpec::Native });
    spec
}

#[test]
fn mabfuzz_event_stream_matches_the_golden_snapshot() {
    let stream = event_stream(&mabfuzz_smoke_spec());
    // The smoke campaign is batch-size 1: every test gets its own round.
    assert_eq!(stream.lines().filter(|l| l.contains("\"event\":\"test_folded\"")).count(), 120);
    assert_eq!(stream.lines().filter(|l| l.contains("\"event\":\"arm_selected\"")).count(), 120);
    compare_against_golden(&stream, "events_mabfuzz_smoke.jsonl");
}

#[test]
fn baseline_event_stream_matches_the_golden_snapshot() {
    let stream = event_stream(&baseline_smoke_spec());
    assert_eq!(stream.lines().filter(|l| l.contains("\"event\":\"test_folded\"")).count(), 80);
    assert!(
        !stream.contains("\"event\":\"arm_selected\"")
            && !stream.contains("\"event\":\"batch_folded\"")
            && !stream.contains("\"event\":\"arm_reset\""),
        "the baseline has no bandit rounds"
    );
    assert!(
        stream.lines().last().unwrap().starts_with("{\"event\":\"campaign_finished\""),
        "the stream closes with the finish event"
    );
    compare_against_golden(&stream, "events_baseline_smoke.jsonl");
}

#[test]
fn event_streams_are_shard_count_invariant() {
    // The smoke spec at its own batch size (1): shard workers change where a
    // test simulates, never what the fold — and so the stream — observes.
    let serial = mabfuzz_smoke_spec();
    let mut sharded = serial.clone();
    sharded.shards = 4;
    assert_eq!(event_stream(&serial), event_stream(&sharded), "batch 1: 1 vs 4 shards");

    // And at a real batch size, where the per-test RNG streams are derived:
    // a deliberately different deterministic campaign, equally invariant.
    let batched = |shards: usize| {
        CampaignSpec::builder()
            .algorithm(BanditKind::Ucb1)
            .arms(4)
            .max_tests(60)
            .max_steps_per_test(200)
            .mutations_per_interesting_test(2)
            .sample_interval(5)
            .rng_seed(9)
            .shards(shards)
            .batch_size(8)
            .processor(ProcessorKind::Rocket, BugSpec::None)
            .build()
            .expect("valid spec")
    };
    let reference = event_stream(&batched(1));
    for shards in [2usize, 4] {
        assert_eq!(reference, event_stream(&batched(shards)), "batch 8: {shards} shards diverged");
    }
    assert!(
        reference.contains("\"event\":\"batch_folded\""),
        "batched rounds close with batch events"
    );
}
