//! Static-vs-dynamic CFG consistency: every pc transition a simulator
//! actually commits is accounted for by the static analysis — an internal
//! step inside a basic block, a CFG edge, or a trap exit — never
//! `Unmatched`.
//!
//! This is the strict end-to-end check behind the edge-coverage signal: the
//! harness's edge mapper silently skips unmatched transitions (robustness
//! against hypothetical buggy-DUT control flow), so this suite is where a
//! closure bug in `analysis` would surface. It sweeps all three processor
//! models and the golden interpreter across every bug configuration (bug
//! sets change *observed* control flow: suppressed traps fall through,
//! illegal instructions execute), on generated seeds and on mutated
//! descendants whose images carry illegal words and wild targets.

use mabfuzz_suite::analysis::{ProgramFacts, Transition};
use mabfuzz_suite::fuzzer::MutationEngine;
use mabfuzz_suite::isa_sim::{ExecTrace, GoldenSim};
use mabfuzz_suite::proc_sim::{BugSet, Processor, ProcessorKind, Vulnerability};
use mabfuzz_suite::riscv::gen::{GeneratorConfig, ProgramGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAX_STEPS: usize = 400;

/// Asserts every committed transition of `trace` maps into the static CFG.
fn assert_trace_maps(facts: &ProgramFacts, trace: &ExecTrace, context: &str) {
    for commit in trace.iter() {
        let transition =
            facts.map_transition(commit.pc, commit.next_pc, commit.exception.is_some());
        assert!(
            !matches!(transition, Transition::Unmatched),
            "{context}: transition {:#x} -> {:#x} (exception: {}) is not in the static CFG",
            commit.pc,
            commit.next_pc,
            commit.exception.is_some(),
        );
    }
}

#[test]
fn golden_and_dut_traces_stay_inside_the_static_cfg_for_every_bug_set() {
    let generator = ProgramGenerator::new(GeneratorConfig::default());
    let golden = GoldenSim::new();
    for kind in ProcessorKind::ALL {
        // Bug-free, the paper's native set, and each vulnerability alone.
        let mut cores: Vec<(String, Box<dyn Processor>)> = vec![
            ("none".to_owned(), kind.build(BugSet::none())),
            ("native".to_owned(), kind.build_with_native_bugs()),
        ];
        for vuln in Vulnerability::ALL {
            cores.push((format!("{vuln:?}"), kind.build(BugSet::only(vuln))));
        }
        for (label, core) in &cores {
            let mut rng = StdRng::seed_from_u64(0xCF6);
            for index in 0..8 {
                let program = generator.generate_seed(&mut rng);
                let facts = ProgramFacts::analyze(&program.text_bytes());
                let context = format!("{kind}/{label}/seed{index}");
                assert_trace_maps(
                    &facts,
                    &golden.run(&program, MAX_STEPS),
                    &format!("{context}/golden"),
                );
                assert_trace_maps(
                    &facts,
                    &core.run(&program, MAX_STEPS).trace,
                    &format!("{context}/dut"),
                );
            }
        }
    }
}

#[test]
fn mutated_descendants_stay_inside_the_static_cfg() {
    // Mutations corrupt images freely (bit flips can forge illegal words,
    // wild branch offsets, misaligned targets); the closure rules must
    // absorb whatever the simulators then actually commit.
    let generator = ProgramGenerator::new(GeneratorConfig::default());
    let mutator = MutationEngine::new(GeneratorConfig::default());
    let golden = GoldenSim::new();
    let mut rng = StdRng::seed_from_u64(0xBADC0DE);
    for kind in ProcessorKind::ALL {
        let core = kind.build_with_native_bugs();
        for round in 0..10 {
            let mut program = generator.generate_seed(&mut rng);
            for generation in 0..4 {
                (program, _) = mutator.mutate(&program, &mut rng);
                let facts = ProgramFacts::analyze(&program.text_bytes());
                let context = format!("{kind}/round{round}/gen{generation}");
                assert_trace_maps(
                    &facts,
                    &golden.run(&program, MAX_STEPS),
                    &format!("{context}/golden"),
                );
                assert_trace_maps(
                    &facts,
                    &core.run(&program, MAX_STEPS).trace,
                    &format!("{context}/dut"),
                );
            }
        }
    }
}
