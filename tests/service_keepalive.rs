//! Keep-alive transport and backpressure end to end: sequential requests
//! reuse one connection, idle-timeout closes are transparently survived by
//! the client's reconnect-once, an over-capacity fleet answers 429 and the
//! coordinator backs off and retries without consuming attempts, and the
//! streaming merge's memory caps turn hostile streams into loud errors.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mabfuzz_service::{
    CampaignServer, Client, ClientError, Coordinator, DispatchError, Fault, FaultyTransport,
    RetryPolicy, TcpTransport, MAX_EVENT_LINE_BYTES,
};
use mabfuzz_suite::mabfuzz::report::campaign_json;
use mabfuzz_suite::mabfuzz::{BugSpec, Campaign, CampaignSpec, CampaignSummary};
use mabfuzz_suite::proc_sim::ProcessorKind;

fn tiny_spec(seed: u64) -> CampaignSpec {
    CampaignSpec::builder()
        .arms(4)
        .max_tests(40)
        .max_steps_per_test(200)
        .sample_interval(5)
        .rng_seed(seed)
        .processor(ProcessorKind::Rocket, BugSpec::None)
        .build()
        .expect("valid spec")
}

/// The serial reference: `(summary, report)` of running `spec` in-process.
fn reference(spec: &CampaignSpec) -> (CampaignSummary, String) {
    let outcome = Campaign::from_spec(spec).expect("self-contained spec").execute();
    (CampaignSummary::from_outcome(&outcome), campaign_json(spec, &outcome))
}

#[test]
fn sequential_requests_share_one_connection() {
    let server = CampaignServer::bind("127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.serve());

    let faulty = Arc::new(FaultyTransport::new(Arc::new(TcpTransport::default())));
    let transport: Arc<FaultyTransport> = Arc::clone(&faulty);
    let client = Client::new(addr).with_transport(transport);

    // Seven requests spanning every response shape the protocol has — a
    // fixed-length JSON body, a chunked NDJSON stream, and an error-free
    // delete — all over the same pooled connection.
    client.healthz().expect("healthz");
    let id = client.submit(&tiny_spec(11).to_json()).expect("submit");
    let events = client.events(id).expect("the stream drains to terminal");
    assert!(events.ends_with('\n'), "complete NDJSON history");
    let status = client.status(id).expect("status");
    assert!(status.is_terminal(), "the drained stream implies a terminal campaign");
    client.report(id).expect("report");
    client.delete(id).expect("delete");
    assert!(client.list().expect("list").is_empty());

    assert_eq!(
        (faulty.connections_made(), faulty.requests_made()),
        (1, 7),
        "seven sequential requests must share one keep-alive connection"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("thread").expect("clean shutdown");
}

#[test]
fn an_idle_timeout_close_is_survived_by_reconnecting_once() {
    // The daemon cuts idle sockets at 150 ms; a client that pauses longer
    // holds a stale pooled connection and must reconnect transparently.
    let server = CampaignServer::bind("127.0.0.1:0", 1)
        .expect("bind")
        .with_io_timeout(Some(Duration::from_millis(150)));
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.serve());

    let faulty = Arc::new(FaultyTransport::new(Arc::new(TcpTransport::default())));
    let transport: Arc<FaultyTransport> = Arc::clone(&faulty);
    let client = Client::new(addr).with_transport(transport);

    client.healthz().expect("first request opens the connection");
    assert_eq!(faulty.connections_made(), 1);

    thread::sleep(Duration::from_millis(600));
    client.healthz().expect("a stale pooled connection is replaced, not surfaced");
    assert_eq!(
        faulty.connections_made(),
        2,
        "exactly one reconnect after the server closed the idle socket"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("thread").expect("clean shutdown");
}

#[test]
fn a_mid_request_disconnect_at_every_boundary_is_recovered() {
    // Request 0 is the submit, request 1 the event stream. Schedule each
    // fault kind at each of those boundaries; every one must be absorbed by
    // a retry or reassignment with byte-identical artefacts.
    let spec = tiny_spec(12);
    let expected = reference(&spec);
    let cases: Vec<(usize, Fault)> = [
        Fault::RefuseConnect,
        Fault::DropAfter(0),
        Fault::DropAfter(300),
        Fault::StallAfter(120),
        Fault::GarbageAt(40),
        Fault::ShortWriteAt(10),
    ]
    .into_iter()
    .flat_map(|fault| [(0usize, fault), (1usize, fault)])
    .collect();

    for (request, fault) in cases {
        let server = CampaignServer::bind("127.0.0.1:0", 1).expect("bind");
        let client = Client::new(server.local_addr());
        let handle = thread::spawn(move || server.serve());

        let faulty = Arc::new(
            FaultyTransport::new(Arc::new(TcpTransport::default()))
                .schedule_request(request, fault),
        );
        let transport: Arc<FaultyTransport> = Arc::clone(&faulty);
        let coordinator =
            Coordinator::new(vec![client.clone().with_transport(transport)]).with_retry_policy(
                RetryPolicy {
                    max_attempts: 4,
                    base_delay: Duration::from_millis(1),
                    max_delay: Duration::from_millis(4),
                    ..RetryPolicy::default()
                },
            );
        let outcomes = coordinator
            .run(std::slice::from_ref(&spec))
            .unwrap_or_else(|error| panic!("{fault:?} at request {request}: {error}"));
        assert_eq!(outcomes.len(), 1);
        assert!(!outcomes[0].ran_locally, "{fault:?} at request {request} forced local fallback");
        assert_eq!(
            outcomes[0].report, expected.1,
            "{fault:?} at request {request}: report diverged from the local run"
        );
        assert_eq!(outcomes[0].summary, expected.0, "{fault:?} at request {request}");

        client.shutdown().expect("shutdown");
        handle.join().expect("thread").expect("clean shutdown");
    }
}

#[test]
fn an_over_capacity_worker_answers_429_and_the_coordinator_backs_off() {
    // One worker slot, one queue slot: a long-running blocker occupies the
    // worker and a tiny filler occupies the queue, so the next submission
    // must be refused with 429 until the blocker is cancelled.
    let server = CampaignServer::bind("127.0.0.1:0", 1)
        .expect("bind")
        .with_max_queue(Some(1));
    let client = Client::new(server.local_addr());
    let handle = thread::spawn(move || server.serve());

    let blocker_spec = CampaignSpec::builder()
        .arms(4)
        .max_tests(2_000_000)
        .max_steps_per_test(200)
        .sample_interval(5)
        .rng_seed(13)
        .processor(ProcessorKind::Rocket, BugSpec::None)
        .build()
        .expect("valid spec");
    let blocker = client.submit(&blocker_spec.to_json()).expect("submit the blocker");
    let started = Instant::now();
    while client.status(blocker).expect("status").status != "running" {
        assert!(started.elapsed() < Duration::from_secs(10), "blocker never started");
        thread::sleep(Duration::from_millis(2));
    }
    let filler = client.submit(&tiny_spec(14).to_json()).expect("the queue takes one");

    // The hub census reflects the saturation, and a raw submit sees the 429
    // with its retryable error text.
    let health = client.health_snapshot().expect("healthz");
    assert_eq!((health.queued, health.running, health.capacity), (1, 1, Some(1)));
    match client.submit(&tiny_spec(15).to_json()) {
        Err(ClientError::Http { status: 429, message }) => {
            assert!(message.contains("capacity of 1"), "{message}");
            assert!(message.contains("retry"), "{message}");
        }
        other => panic!("expected 429, got {other:?}"),
    }

    // Free the fleet shortly after the coordinator starts backing off.
    let unblock = {
        let client = client.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(150));
            client.cancel(blocker).expect("cancel the blocker");
        })
    };

    let spec = tiny_spec(16);
    let expected = reference(&spec);
    let coordinator = Coordinator::new(vec![client.clone()]).with_retry_policy(RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(40),
        ..RetryPolicy::default()
    });
    let outcomes = coordinator
        .run(std::slice::from_ref(&spec))
        .expect("backpressure resolves once the blocker is cancelled");
    unblock.join().expect("unblock thread");

    assert!(coordinator.busy_backoffs() >= 1, "the 429 was absorbed as a backoff");
    assert_eq!(outcomes[0].attempts, 1, "backpressure retries never consume attempts");
    assert!(!outcomes[0].ran_locally, "429 is not a worker failure, so no local fallback");
    assert_eq!(outcomes[0].report, expected.1, "artefacts stay byte-identical through 429s");
    assert_eq!(outcomes[0].summary, expected.0);
    let log = coordinator.log();
    assert!(
        log.iter().any(|line| line.contains("queue capacity")),
        "the first backoff is logged once: {log:?}"
    );

    // Tidy up the blocker and filler so shutdown drains promptly.
    client.wait_terminal(filler, Duration::from_millis(5)).expect("filler finishes");
    client.shutdown().expect("shutdown");
    handle.join().expect("thread").expect("clean shutdown");
}

#[test]
fn the_event_stream_cap_fails_loudly_instead_of_buffering_without_bound() {
    let server = CampaignServer::bind("127.0.0.1:0", 1).expect("bind");
    let client = Client::new(server.local_addr());
    let handle = thread::spawn(move || server.serve());

    let spec = tiny_spec(17);
    // A 64-byte cap: even a perfectly well-formed stream overruns it, which
    // is exactly how a hostile endless-valid-JSON stream must surface — a
    // loud dispatch error, not unbounded memory.
    let capped = Coordinator::new(vec![client.clone()]).with_event_stream_cap(64);
    match capped.run(std::slice::from_ref(&spec)) {
        Err(DispatchError::EventOverflow { job: 0, detail, .. }) => {
            assert!(detail.contains("64 byte cap"), "{detail}");
        }
        other => panic!("expected EventOverflow, got {other:?}"),
    }

    // Under the default cap the same spec streams fine, and the fold's
    // high-water mark shows per-lane memory stayed line-sized, far under
    // the defensive ceiling.
    let coordinator = Coordinator::new(vec![client.clone()]);
    let outcomes = coordinator.run(std::slice::from_ref(&spec)).expect("dispatch");
    assert_eq!(outcomes.len(), 1);
    let peak = coordinator.peak_event_line_bytes();
    assert!(peak > 0, "the fold saw at least one buffered line");
    assert!(
        peak < MAX_EVENT_LINE_BYTES / 16,
        "event lines are small; the fold buffered {peak} bytes"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("thread").expect("clean shutdown");
}
