//! Cross-crate integration test: the TheHuzz baseline speaks the full
//! observer event protocol without changing a single byte of any artefact.
//!
//! Pins the two halves of the baseline instrumentation bugfix:
//!
//! * **byte-neutrality** — attaching observers (including the production
//!   `EventLog` consumer) to a `PolicySpec::Baseline` campaign leaves the
//!   outcome identical to the unobserved run, for coverage mode and for
//!   detection mode (the grid's golden `experiments_smoke.json` is pinned
//!   separately by `tests/golden_experiments.rs`);
//! * **detection-mode parity** — the Campaign-routed baseline reproduces the
//!   legacy `TheHuzzFuzzer::run` ordering exactly (record the detecting
//!   test, then stop before enqueuing mutants), asserted via
//!   `first_detection == tests_executed` equivalence on the cva6
//!   `V5MissingAccessFault` campaign.

use std::sync::{Arc, Mutex};

use mabfuzz_suite::fuzzer::TheHuzzFuzzer;
use mabfuzz_suite::mabfuzz::{
    BugSpec, Campaign, CampaignObserver, CampaignSpec, EventLog, SharedBuffer, TestFolded,
};
use mabfuzz_suite::proc_sim::{ProcessorKind, Vulnerability};

/// Counts per-test events, to prove the baseline actually streams them.
#[derive(Default)]
struct Counter(Arc<Mutex<u64>>);

impl CampaignObserver for Counter {
    fn test_folded(&mut self, _event: &TestFolded<'_>) {
        *self.0.lock().unwrap() += 1;
    }
}

fn coverage_spec() -> CampaignSpec {
    CampaignSpec::builder()
        .baseline()
        .max_tests(120)
        .max_steps_per_test(200)
        .sample_interval(5)
        .processor(ProcessorKind::Rocket, BugSpec::Native)
        .rng_seed(11)
        .build()
        .expect("valid spec")
}

fn detection_spec() -> CampaignSpec {
    CampaignSpec::builder()
        .baseline()
        .max_tests(1500)
        .max_steps_per_test(250)
        .stop_on_first_detection(true)
        .processor(ProcessorKind::Cva6, BugSpec::Only(Vulnerability::V5MissingAccessFault))
        .rng_seed(2)
        .build()
        .expect("valid spec")
}

#[test]
fn observers_are_byte_neutral_on_baseline_campaigns() {
    for spec in [coverage_spec(), detection_spec()] {
        let plain = Campaign::from_spec(&spec).unwrap().execute();

        let buffer = SharedBuffer::new();
        let seen = Arc::new(Mutex::new(0));
        let observed = Campaign::from_spec(&spec)
            .unwrap()
            .with_observer(Box::new(EventLog::new(buffer.clone())))
            .with_observer(Box::new(Counter(Arc::clone(&seen))))
            .execute();

        assert_eq!(plain, observed, "observers perturbed a baseline campaign ({})", spec.label());
        assert_eq!(
            *seen.lock().unwrap(),
            observed.stats.tests_executed(),
            "every executed baseline test streams a TestFolded event"
        );
        assert!(
            buffer.contents().lines().last().unwrap().contains("campaign_finished"),
            "the event log captured the full stream"
        );
    }
}

#[test]
fn detection_mode_parity_between_legacy_wrapper_and_routed_path() {
    let spec = detection_spec();
    let processor = spec.processor.expect("detection spec names its processor");

    let legacy =
        TheHuzzFuzzer::new(Arc::from(processor.build()), spec.campaign.clone(), spec.rng_seed)
            .run();
    let routed = Campaign::from_spec(&spec).unwrap().execute();

    assert_eq!(legacy, routed.stats, "the routed baseline diverged from the legacy wrapper");
    let detection = legacy.first_detection().expect("V5 triggers within 1500 tests");
    assert_eq!(
        legacy.tests_executed(),
        detection,
        "TheHuzz stops on the detecting test before enqueuing mutants"
    );
    assert_eq!(routed.stats.first_detection(), Some(detection));
    assert_eq!(routed.stats.tests_executed(), detection);
}
