//! `experiments analyze`, pinned by a golden snapshot.
//!
//! Renders the static-analysis report of the checked-in smoke spec's seed
//! corpus (`mabfuzz_bench::analyze::spec_report` — the exact renderer the
//! `experiments analyze --spec` binary path prints) and byte-compares it
//! against `tests/golden/experiments_analyze_smoke.json`. The snapshot pins
//! the whole static stack at once: the generator's seed stream, the decoder,
//! and every `ProgramFacts` field (block boundaries, CFG edges and kinds,
//! liveness sets, static classifications). Re-bless with `UPDATE_GOLDEN=1`
//! and justify the re-baseline; CI additionally `cmp`s the binary's output
//! against the same snapshot.

use std::path::PathBuf;

use mabfuzz_suite::mabfuzz::CampaignSpec;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn analyze_report_matches_the_golden_snapshot() {
    let text = std::fs::read_to_string(golden_dir().join("campaign_spec.json"))
        .expect("campaign_spec.json present");
    let spec = CampaignSpec::from_json(&text).expect("the checked-in spec parses");
    let mut rendered = mabfuzz_bench::analyze::spec_report(&spec);
    rendered.push('\n'); // the binary prints one line

    let path = golden_dir().join("experiments_analyze_smoke.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        eprintln!("re-blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "missing golden snapshot {} ({error}); run UPDATE_GOLDEN=1 cargo test \
             --test golden_analyze to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "the analyze report diverged from tests/golden/experiments_analyze_smoke.json — \
         the seed generator stream, the decoder or the analysis itself changed. If \
         intentional, re-bless with UPDATE_GOLDEN=1 and justify the re-baseline."
    );
}
