//! End-to-end round trips through the campaign service: the in-tree proof
//! that `experiments serve` speaks the artefact formats byte for byte.
//!
//! * the checked-in `tests/golden/campaign_spec.json`, submitted over TCP,
//!   streams events byte-identical to `tests/golden/events_mabfuzz_smoke.jsonl`
//!   and serves a report byte-identical to
//!   `tests/golden/spec_campaign_smoke.json`;
//! * N specs submitted concurrently yield final reports and event feeds
//!   byte-identical to serially executed `Campaign::from_spec` runs;
//! * cancellation stops at a fold boundary, reports `cancelled`, and leaves
//!   a partial event stream that is a strict prefix of the full stream;
//! * invalid submissions fail loudly with the strict codec's `SpecError`
//!   text, unknown ids are 404s, and shutdown is clean.

use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use mabfuzz_service::{CampaignServer, Client, ClientError};
use mabfuzz_suite::mabfuzz::report::campaign_json;
use mabfuzz_suite::mabfuzz::{Campaign, CampaignSpec, EventLog, SharedBuffer};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn read_golden(file: &str) -> String {
    let path = golden_dir().join(file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|error| panic!("missing golden {}: {error}", path.display()))
}

/// Spawns a daemon on an ephemeral port; returns its client and the join
/// handle of the serving thread (joined for a clean-shutdown assertion).
fn start_server(workers: usize) -> (Client, thread::JoinHandle<std::io::Result<()>>) {
    let server = CampaignServer::bind("127.0.0.1:0", workers).expect("bind an ephemeral port");
    let client = Client::new(server.local_addr());
    let handle = thread::spawn(move || server.serve());
    (client, handle)
}

/// Runs `spec` locally (no server) and returns its `(event stream, report)`
/// — the serial reference every remote execution must reproduce.
fn serial_reference(spec: &CampaignSpec) -> (String, String) {
    let buffer = SharedBuffer::new();
    let log = EventLog::new(buffer.clone());
    let health = log.health();
    let outcome = Campaign::from_spec(spec)
        .expect("self-contained spec")
        .with_observer(Box::new(log))
        .execute();
    assert!(!health.failed(), "in-memory writes cannot fail");
    (buffer.contents(), campaign_json(spec, &outcome))
}

#[test]
fn golden_spec_round_trip_over_tcp() {
    let spec_json = read_golden("campaign_spec.json");
    let (client, server) = start_server(2);

    let id = client.submit(&spec_json).expect("the golden spec is valid");
    // Tail the live stream while the campaign runs.
    let live = {
        let client = client.clone();
        thread::spawn(move || client.events(id))
    };
    let status = client.wait_terminal(id, Duration::from_millis(10)).expect("status");
    assert_eq!(status.status, "finished");
    assert_eq!(status.label, "MABFuzz: UCB");

    // Acceptance criterion: the bytes tailed over TCP are identical to the
    // golden EventLog JSONL for this spec.
    let streamed = live.join().expect("tail thread").expect("event stream");
    assert_eq!(
        streamed,
        read_golden("events_mabfuzz_smoke.jsonl"),
        "the streamed NDJSON diverged from tests/golden/events_mabfuzz_smoke.jsonl"
    );

    // A late subscriber replays the identical stream from the start.
    let replay = client.events(id).expect("replay");
    assert_eq!(replay, streamed, "late subscribers replay the full deterministic stream");

    // The served report is byte-identical to the CLI's golden document.
    let report = client.report(id).expect("report");
    assert_eq!(
        report,
        read_golden("spec_campaign_smoke.json").trim_end_matches('\n'),
        "the served report diverged from tests/golden/spec_campaign_smoke.json"
    );

    // Status listing sees the campaign.
    let listing = client.list().expect("list");
    assert_eq!(listing.len(), 1);
    assert_eq!((listing[0].id, listing[0].status.as_str()), (id, "finished"));

    // Terminal campaigns can be evicted; their history is then gone.
    client.delete(id).expect("terminal campaigns delete");
    assert!(client.list().expect("list").is_empty(), "the entry was evicted");
    let error = client.status(id).expect_err("deleted id is unknown");
    assert!(matches!(error, ClientError::Http { status: 404, .. }), "{error}");

    client.shutdown().expect("shutdown request");
    server.join().expect("server thread").expect("clean shutdown");
}

#[test]
fn concurrent_submissions_match_serial_execution() {
    // Three distinct campaigns (different policies and seeds) on a 2-worker
    // pool, so execution genuinely overlaps.
    let specs: Vec<CampaignSpec> = [("ucb", 11u64), ("exp3", 12), ("egreedy", 13)]
        .iter()
        .map(|(policy, seed)| {
            CampaignSpec::builder()
                .policy_named(policy)
                .arms(4)
                .max_tests(150)
                .max_steps_per_test(200)
                .mutations_per_interesting_test(2)
                .sample_interval(5)
                .rng_seed(*seed)
                .processor(
                    mabfuzz_suite::proc_sim::ProcessorKind::Rocket,
                    mabfuzz_suite::mabfuzz::BugSpec::None,
                )
                .build()
                .expect("valid spec")
        })
        .collect();
    let references: Vec<(String, String)> = specs.iter().map(serial_reference).collect();

    let (client, server) = start_server(2);
    let (results_tx, results_rx) = mpsc::channel();
    for (index, spec) in specs.iter().enumerate() {
        let client = client.clone();
        let spec_json = spec.to_json();
        let results = results_tx.clone();
        thread::spawn(move || {
            let id = client.submit(&spec_json).expect("valid spec accepted");
            // Tail the live stream, then fetch the terminal report.
            let events = client.events(id).expect("event stream");
            let status = client.wait_terminal(id, Duration::from_millis(10)).expect("status");
            let report = client.report(id).expect("report");
            results.send((index, events, status.status, report)).expect("send result");
        });
    }
    drop(results_tx);

    let mut seen = 0;
    for (index, events, status, report) in results_rx {
        let (expected_events, expected_report) = &references[index];
        assert_eq!(status, "finished");
        assert_eq!(
            &events, expected_events,
            "campaign {index}: concurrent event feed diverged from the serial run"
        );
        assert_eq!(
            &report, expected_report,
            "campaign {index}: concurrent report diverged from the serial run"
        );
        seen += 1;
    }
    assert_eq!(seen, specs.len(), "every concurrent submission reported back");

    client.shutdown().expect("shutdown request");
    server.join().expect("server thread").expect("clean shutdown");
}

#[test]
fn cancellation_stops_at_a_fold_boundary_with_a_prefix_stream() {
    // A budget big enough that cancellation always lands mid-campaign on
    // any machine (~1 s of simulation), small enough to run uncancelled as
    // the reference.
    let spec = CampaignSpec::builder()
        .arms(4)
        .max_tests(20_000)
        .max_steps_per_test(200)
        .mutations_per_interesting_test(2)
        .sample_interval(1_000)
        .rng_seed(21)
        .processor(
            mabfuzz_suite::proc_sim::ProcessorKind::Rocket,
            mabfuzz_suite::mabfuzz::BugSpec::None,
        )
        .build()
        .expect("valid spec");
    let (full_stream, _) = serial_reference(&spec);

    let (client, server) = start_server(1);
    let id = client.submit(&spec.to_json()).expect("submit");
    let tail = {
        let client = client.clone();
        thread::spawn(move || client.events(id))
    };
    // Wait until the campaign is demonstrably in flight (its stream has
    // produced events), then cancel.
    loop {
        let events_so_far = client.status(id).expect("status");
        if events_so_far.status == "running" {
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }
    thread::sleep(Duration::from_millis(100));
    client.cancel(id).expect("cancel request");

    let status = client.wait_terminal(id, Duration::from_millis(10)).expect("status");
    assert_eq!(status.status, "cancelled", "the run stopped early");
    let partial = tail.join().expect("tail thread").expect("event stream");
    assert!(
        !partial.is_empty() && partial.len() < full_stream.len(),
        "cancellation cut the campaign mid-stream ({} of {} bytes)",
        partial.len(),
        full_stream.len()
    );
    assert!(
        full_stream.starts_with(&partial),
        "the partial stream is a strict prefix of the full golden stream"
    );
    assert!(partial.ends_with('\n'), "the cut lands on an event boundary");
    assert!(
        !partial.contains("\"campaign_finished\""),
        "an interrupted campaign withholds the finished event"
    );
    // The report covers the folded prefix and is served normally.
    let report = client.report(id).expect("cancelled campaigns still report");
    assert!(report.contains("\"tests_executed\":"), "{report}");
    // Cancelling a terminal campaign is a no-op, not an error.
    client.cancel(id).expect("terminal cancel is idempotent");
    // A running campaign cannot be deleted; a cancelled (terminal) one can.
    client.delete(id).expect("cancelled campaigns are terminal and delete");

    client.shutdown().expect("shutdown request");
    server.join().expect("server thread").expect("clean shutdown");
}

#[test]
fn invalid_submissions_fail_loudly_with_spec_error_text() {
    let (client, server) = start_server(1);

    // Unknown field: the same strict-codec text the CLI prints.
    let error = client.submit("{\"polcy\":\"ucb\"}").expect_err("typo rejected");
    match &error {
        ClientError::Http { status, message } => {
            assert_eq!(*status, 400);
            assert!(message.contains("unknown spec field `polcy`"), "{message}");
        }
        other => panic!("expected an HTTP error, got {other}"),
    }

    // Unknown policy: the full valid-policy list, verbatim.
    let error = client.submit("{\"policy\":\"gradient\"}").expect_err("unknown policy");
    match &error {
        ClientError::Http { status, message } => {
            assert_eq!(*status, 400);
            assert!(message.contains("valid policies: TheHuzz"), "{message}");
        }
        other => panic!("expected an HTTP error, got {other}"),
    }

    // A spec without a processor section cannot run remotely.
    let error = client.submit("{\"policy\":\"ucb\"}").expect_err("no processor");
    match &error {
        ClientError::Http { status, message } => {
            assert_eq!(*status, 400);
            assert!(message.contains("processor"), "{message}");
        }
        other => panic!("expected an HTTP error, got {other}"),
    }

    // Malformed JSON bodies are 400s too.
    let error = client.submit("{\"policy\":").expect_err("truncated body");
    assert!(matches!(error, ClientError::Http { status: 400, .. }), "{error}");

    // Unknown ids: 404 on every per-campaign endpoint.
    for result in [
        client.status(42).map(|_| ()),
        client.report(42).map(|_| ()),
        client.events(42).map(|_| ()),
        client.cancel(42),
    ] {
        let error = result.expect_err("unknown id");
        assert!(
            matches!(error, ClientError::Http { status: 404, .. }),
            "expected 404, got {error}"
        );
    }

    client.shutdown().expect("shutdown request");
    server.join().expect("server thread").expect("clean shutdown");
}

#[test]
fn baseline_campaigns_stream_their_golden_protocol_remotely() {
    // The baseline (TheHuzz) speaks the same wire protocol: its remote feed
    // must equal the serial EventLog stream for the same spec.
    let spec = CampaignSpec::builder()
        .baseline()
        .max_tests(60)
        .max_steps_per_test(200)
        .sample_interval(5)
        .rng_seed(9)
        .processor(
            mabfuzz_suite::proc_sim::ProcessorKind::Rocket,
            mabfuzz_suite::mabfuzz::BugSpec::None,
        )
        .build()
        .expect("valid spec");
    let (expected_events, expected_report) = serial_reference(&spec);

    let (client, server) = start_server(1);
    let id = client.submit(&spec.to_json()).expect("submit");
    client.wait_terminal(id, Duration::from_millis(10)).expect("status");
    let events = client.events(id).expect("events");
    assert_eq!(events, expected_events, "baseline feeds match the serial stream");
    assert!(
        !events.contains("\"arm_selected\""),
        "the baseline has no bandit rounds"
    );
    assert_eq!(client.report(id).expect("report"), expected_report);

    client.shutdown().expect("shutdown request");
    server.join().expect("server thread").expect("clean shutdown");
}
