//! Chaos suite for the fault-tolerant dispatch coordinator.
//!
//! The contract under test: a grid dispatched across remote workers merges
//! into artefacts **byte-identical** to a local run of the same specs — no
//! matter which scheduled transport faults (refused connects, mid-stream
//! drops, stalls, short writes, garbage bytes) the fleet suffers — and every
//! campaign lost in flight is reassigned exactly once per loss, never folded
//! twice.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mabfuzz_service::{
    CampaignServer, Client, Coordinator, DispatchError, Fault, FaultyTransport, RetryPolicy,
    TcpTransport,
};
use mabfuzz_suite::mabfuzz::report::campaign_json;
use mabfuzz_suite::mabfuzz::{BugSpec, Campaign, CampaignSpec, CampaignSummary};
use mabfuzz_suite::proc_sim::ProcessorKind;

use proptest::prelude::*;

/// Spawns a daemon on an ephemeral port; returns its client and the join
/// handle of the serving thread.
fn start_server(workers: usize) -> (Client, thread::JoinHandle<std::io::Result<()>>) {
    let server = CampaignServer::bind("127.0.0.1:0", workers).expect("bind an ephemeral port");
    let client = Client::new(server.local_addr());
    let handle = thread::spawn(move || server.serve());
    (client, handle)
}

/// A fast retry policy so chaos cases do not sleep through real backoff.
fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
        ..RetryPolicy::default()
    }
}

/// A small but non-trivial grid: three distinct campaigns (different
/// policies and seeds), each self-contained.
fn small_grid() -> Vec<CampaignSpec> {
    [("ucb", 31u64), ("exp3", 32), ("egreedy", 33)]
        .iter()
        .map(|(policy, seed)| {
            CampaignSpec::builder()
                .policy_named(policy)
                .arms(4)
                .max_tests(60)
                .max_steps_per_test(200)
                .mutations_per_interesting_test(2)
                .sample_interval(5)
                .rng_seed(*seed)
                .processor(ProcessorKind::Rocket, BugSpec::None)
                .build()
                .expect("valid spec")
        })
        .collect()
}

/// The serial reference: `(summary, report)` of running `spec` in-process.
fn reference(spec: &CampaignSpec) -> (CampaignSummary, String) {
    let outcome = Campaign::from_spec(spec).expect("self-contained spec").execute();
    (CampaignSummary::from_outcome(&outcome), campaign_json(spec, &outcome))
}

/// Asserts a dispatch's outcomes are byte-identical to the local references,
/// in input order, with each job contributing exactly once (no double-fold).
fn assert_matches_references(
    outcomes: &[mabfuzz_service::JobOutcome],
    specs: &[CampaignSpec],
    references: &[(CampaignSummary, String)],
) {
    assert_eq!(outcomes.len(), specs.len(), "one outcome per spec, none folded twice");
    for (index, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.job, index, "outcomes come back in input order");
        let (expected_summary, expected_report) = &references[index];
        assert_eq!(
            &outcome.report, expected_report,
            "job {index}: dispatched report diverged from the local run"
        );
        assert_eq!(
            &outcome.summary, expected_summary,
            "job {index}: dispatched summary diverged from the local run"
        );
    }
}

#[test]
fn fault_free_dispatch_is_byte_identical_to_local_execution() {
    let specs = small_grid();
    let references: Vec<_> = specs.iter().map(reference).collect();

    let (client_a, server_a) = start_server(2);
    let (client_b, server_b) = start_server(2);
    let coordinator = Coordinator::new(vec![client_a.clone(), client_b.clone()])
        .with_retry_policy(fast_retries());
    let outcomes = coordinator.run(&specs).expect("fault-free dispatch succeeds");

    assert_matches_references(&outcomes, &specs, &references);
    assert_eq!(coordinator.reassignments(), 0);
    assert_eq!(coordinator.local_runs(), 0);
    assert!(coordinator.log().is_empty(), "no faults, no coordination events");
    for outcome in &outcomes {
        assert!(!outcome.ran_locally);
        assert_eq!(outcome.attempts, 1, "healthy fleets finish first try");
    }
    // The coordinator deletes finished campaigns; the workers end up empty.
    assert!(client_a.list().expect("list").is_empty(), "worker A was tidied");
    assert!(client_b.list().expect("list").is_empty(), "worker B was tidied");

    client_a.shutdown().expect("shutdown");
    client_b.shutdown().expect("shutdown");
    server_a.join().expect("thread").expect("clean shutdown");
    server_b.join().expect("thread").expect("clean shutdown");
}

#[test]
fn a_campaign_lost_mid_stream_is_reassigned_exactly_once() {
    let specs = vec![small_grid().remove(0)];
    let references: Vec<_> = specs.iter().map(reference).collect();

    let (client, server) = start_server(1);
    // With keep-alive one connection carries the whole attempt, so the
    // chaos schedule targets the *request*: request 0 is the submit,
    // request 1 the event stream — drop the stream after 300 response
    // bytes, a worker dying mid-campaign.
    let faulty = Arc::new(
        FaultyTransport::new(Arc::new(TcpTransport::default()))
            .schedule_request(1, Fault::DropAfter(300)),
    );
    let transport: Arc<FaultyTransport> = Arc::clone(&faulty);
    let coordinator = Coordinator::new(vec![client.clone().with_transport(transport)])
        .with_retry_policy(fast_retries());
    let outcomes = coordinator.run(&specs).expect("the retry recovers the campaign");

    assert_matches_references(&outcomes, &specs, &references);
    assert_eq!(
        coordinator.reassignments(),
        1,
        "exactly one reassignment for exactly one lost in-flight campaign"
    );
    let log = coordinator.log();
    assert_eq!(log.len(), 1, "one log line per loss: {log:?}");
    assert!(log[0].contains("reassigning job 0"), "{}", log[0]);
    assert!(!outcomes[0].ran_locally);
    assert_eq!(outcomes[0].attempts, 2, "first attempt lost, second clean");
    assert_eq!(coordinator.local_runs(), 0);
    // Keep-alive held: both attempts together opened fewer connections
    // than they made requests.
    assert!(
        faulty.connections_made() < faulty.requests_made(),
        "{} connections for {} requests — connections were not reused",
        faulty.connections_made(),
        faulty.requests_made()
    );

    client.shutdown().expect("shutdown");
    server.join().expect("thread").expect("clean shutdown");
}

#[test]
fn a_fully_refused_fleet_degrades_to_local_runs() {
    let specs = vec![small_grid().remove(1)];
    let references: Vec<_> = specs.iter().map(reference).collect();

    let (client, server) = start_server(1);
    let mut faulty = FaultyTransport::new(Arc::new(TcpTransport::default()));
    for connection in 0..32 {
        faulty = faulty.schedule(connection, Fault::RefuseConnect);
    }
    let coordinator = Coordinator::new(vec![client.clone().with_transport(Arc::new(faulty))])
        .with_retry_policy(fast_retries());
    let outcomes = coordinator.run(&specs).expect("local fallback rescues the grid");

    assert_matches_references(&outcomes, &specs, &references);
    assert!(outcomes[0].ran_locally, "the job degraded to in-process execution");
    assert_eq!(coordinator.local_runs(), 1);
    assert_eq!(
        coordinator.reassignments(),
        0,
        "refused connects never put a campaign in flight, so nothing was reassigned"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("thread").expect("clean shutdown");
}

#[test]
fn a_fully_refused_fleet_without_fallback_fails_loudly() {
    let (client, server) = start_server(1);
    let mut faulty = FaultyTransport::new(Arc::new(TcpTransport::default()));
    for connection in 0..32 {
        faulty = faulty.schedule(connection, Fault::RefuseConnect);
    }
    let coordinator = Coordinator::new(vec![client.clone().with_transport(Arc::new(faulty))])
        .with_retry_policy(fast_retries())
        .with_local_fallback(false);
    match coordinator.run(&[small_grid().remove(2)]) {
        Err(DispatchError::JobFailed { job: 0, attempts, .. }) => {
            assert!(attempts <= fast_retries().max_attempts);
        }
        other => panic!("expected JobFailed, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    server.join().expect("thread").expect("clean shutdown");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The chaos matrix: arbitrary schedules of every fault kind, injected
    /// into both workers' transports, must still merge into byte-identical
    /// artefacts — the retries, reassignments and (if the whole fleet is
    /// lost) local fallback absorb every scheduled failure.
    #[test]
    fn dispatch_under_arbitrary_fault_schedules_stays_byte_identical(
        faults_a in proptest::collection::vec((0usize..10, 0u8..5, 0usize..600), 0..4),
        faults_b in proptest::collection::vec((0usize..10, 0u8..5, 0usize..600), 0..4),
        request_faults_a in proptest::collection::vec((0usize..16, 0u8..5, 0usize..600), 0..3),
        request_faults_b in proptest::collection::vec((0usize..16, 0u8..5, 0usize..600), 0..3),
    ) {
        let specs = small_grid();
        let references: Vec<_> = specs.iter().map(reference).collect();

        let (client_a, server_a) = start_server(2);
        let (client_b, server_b) = start_server(2);
        let fault_of = |kind: u8, k: usize| match kind {
            0 => Fault::RefuseConnect,
            1 => Fault::DropAfter(k),
            2 => Fault::StallAfter(k),
            3 => Fault::GarbageAt(k),
            _ => Fault::ShortWriteAt(k),
        };
        // Chaos on both axes: connection-lifetime faults (a socket that was
        // bad from the start) and request-boundary faults (a keep-alive
        // connection that dies mid-request, arbitrarily deep into its life).
        let schedule = |faults: &[(usize, u8, usize)], request_faults: &[(usize, u8, usize)]| {
            let mut transport = FaultyTransport::new(Arc::new(TcpTransport::default()));
            for &(connection, kind, k) in faults {
                transport = transport.schedule(connection, fault_of(kind, k));
            }
            for &(request, kind, k) in request_faults {
                transport = transport.schedule_request(request, fault_of(kind, k));
            }
            Arc::new(transport)
        };
        let coordinator = Coordinator::new(vec![
            client_a.clone().with_transport(schedule(&faults_a, &request_faults_a)),
            client_b.clone().with_transport(schedule(&faults_b, &request_faults_b)),
        ])
        .with_retry_policy(fast_retries());

        let outcomes = coordinator
            .run(&specs)
            .expect("retries, reassignment and local fallback absorb every scheduled fault");
        assert_matches_references(&outcomes, &specs, &references);
        // Bookkeeping stays coherent: every logged event is a reassignment
        // or a fallback, and counters agree with the log.
        let log = coordinator.log();
        let logged_reassignments =
            log.iter().filter(|line| line.contains("reassigning job")).count() as u64;
        let logged_fallbacks =
            log.iter().filter(|line| line.contains("running locally")).count() as u64;
        assert_eq!(logged_reassignments, coordinator.reassignments());
        assert_eq!(logged_fallbacks, coordinator.local_runs());
        assert_eq!(log.len() as u64, logged_reassignments + logged_fallbacks);

        // Unfaulted clients still reach the workers: shut both down.
        client_a.shutdown().expect("shutdown");
        client_b.shutdown().expect("shutdown");
        server_a.join().expect("thread").expect("clean shutdown");
        server_b.join().expect("thread").expect("clean shutdown");
    }
}
