//! Cross-crate integration test: complete fuzzing campaigns (baseline and
//! MABFuzz) detect injected vulnerabilities end to end, and never report
//! mismatches on bug-free designs.

use std::sync::Arc;

use mabfuzz_suite::fuzzer::{CampaignConfig, TheHuzzFuzzer};
use mabfuzz_suite::mab::BanditKind;
use mabfuzz_suite::mabfuzz::{MabFuzzConfig, MabFuzzer};
use mabfuzz_suite::proc_sim::{BugSet, Processor, ProcessorKind, Vulnerability};

fn detection_campaign(max_tests: u64) -> CampaignConfig {
    CampaignConfig {
        max_tests,
        max_steps_per_test: 250,
        stop_on_first_detection: true,
        ..CampaignConfig::default()
    }
}

fn cva6_with(vulnerability: Vulnerability) -> Arc<dyn Processor> {
    Arc::from(ProcessorKind::Cva6.build(BugSet::only(vulnerability)))
}

#[test]
fn thehuzz_detects_the_easy_vulnerabilities() {
    for vulnerability in [Vulnerability::V5MissingAccessFault, Vulnerability::V6UnimplCsrJunk] {
        let stats =
            TheHuzzFuzzer::new(cva6_with(vulnerability), detection_campaign(1500), 2).run();
        assert!(
            stats.first_detection().is_some(),
            "TheHuzz failed to detect {vulnerability} within 1500 tests"
        );
    }
}

#[test]
fn every_mabfuzz_algorithm_detects_an_easy_vulnerability() {
    for kind in BanditKind::ALL {
        let mut config = MabFuzzConfig::new(kind);
        config.campaign = detection_campaign(1500);
        let outcome =
            MabFuzzer::new(cva6_with(Vulnerability::V5MissingAccessFault), config, 5).run();
        assert!(
            outcome.stats.first_detection().is_some(),
            "MABFuzz ({kind}) failed to detect V5 within 1500 tests"
        );
    }
}

#[test]
fn detection_stops_the_campaign_immediately() {
    let stats = TheHuzzFuzzer::new(
        cva6_with(Vulnerability::V6UnimplCsrJunk),
        detection_campaign(2000),
        9,
    )
    .run();
    if let Some(first) = stats.first_detection() {
        assert_eq!(stats.tests_executed(), first);
    }
}

#[test]
fn bug_free_campaigns_stay_clean() {
    // A bug-free BOOM: long campaign, not a single mismatch allowed.
    let processor: Arc<dyn Processor> = Arc::from(ProcessorKind::Boom.build(BugSet::none()));
    let config = CampaignConfig {
        max_tests: 300,
        max_steps_per_test: 250,
        ..CampaignConfig::default()
    };
    let baseline = TheHuzzFuzzer::new(processor.clone(), config.clone(), 4).run();
    assert_eq!(baseline.mismatching_tests(), 0);

    let mut mab_config = MabFuzzConfig::new(BanditKind::Exp3);
    mab_config.campaign = config;
    let mabfuzz = MabFuzzer::new(processor, mab_config, 4).run();
    assert_eq!(mabfuzz.stats.mismatching_tests(), 0);
}

#[test]
fn campaign_statistics_are_internally_consistent() {
    let mut config = MabFuzzConfig::new(BanditKind::Ucb1).with_max_tests(200);
    config.campaign.max_steps_per_test = 250;
    let outcome = MabFuzzer::new(
        Arc::from(ProcessorKind::Rocket.build_with_native_bugs()),
        config,
        13,
    )
    .run();
    let stats = &outcome.stats;
    assert_eq!(stats.tests_executed(), 200);
    // The coverage series ends at the cumulative coverage.
    assert_eq!(stats.series().final_coverage(), stats.final_coverage());
    // History is monotone and bounded by the space size.
    let history = stats.cumulative().history();
    assert!(history.windows(2).all(|w| w[1] >= w[0]));
    // Every test was pulled from some arm.
    let pulls: u64 = outcome.arms.iter().map(|arm| arm.pulls).sum();
    assert!(pulls >= stats.tests_executed());
}
