//! The spec-file pipeline, end to end, pinned by a golden snapshot.
//!
//! `tests/golden/campaign_spec.json` is the checked-in example
//! [`CampaignSpec`]: the smoke-budget UCB cell of the experiment grid
//! (rocket, native bugs, 120 tests, seed 7) written out as a spec file.
//! This suite verifies the whole loop around it:
//!
//! * the file parses into exactly the spec the grid constructs
//!   programmatically (`mabfuzz_bench::campaign_spec`), so the documented
//!   schema and the in-process builders cannot drift apart;
//! * executing it through `Campaign::from_spec` and rendering with
//!   `json::campaign` reproduces `tests/golden/spec_campaign_smoke.json`
//!   byte for byte (re-bless with `UPDATE_GOLDEN=1`, like the experiments
//!   golden) — CI additionally checks the `experiments run --spec` binary
//!   path against the same snapshot;
//! * a custom policy registered at runtime (Thompson-style) runs a full
//!   campaign through `Campaign::from_spec` and shows up in the report
//!   label, with no edit to core or bench sources — the acceptance
//!   criterion of the registry redesign.

use std::path::PathBuf;

use mabfuzz_bench::{campaign_config, campaign_spec, json, FuzzerKind, ShardPlan};
use mabfuzz_suite::mab::{self, Bandit, BanditKind, PolicyParams};
use mabfuzz_suite::mabfuzz::{BugSpec, Campaign, CampaignSpec, PolicySpec, ProcessorSpec};
use mabfuzz_suite::proc_sim::ProcessorKind;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn checked_in_spec() -> CampaignSpec {
    let path = golden_dir().join("campaign_spec.json");
    let text = std::fs::read_to_string(&path).expect("campaign_spec.json present");
    CampaignSpec::from_json(&text).expect("the checked-in spec parses")
}

#[test]
fn checked_in_spec_matches_the_grid_construction() {
    let mut expected = campaign_spec(
        FuzzerKind::MabFuzz(BanditKind::Ucb1),
        campaign_config(120),
        7,
        &ShardPlan::serial(),
    );
    expected.processor = Some(ProcessorSpec { core: ProcessorKind::Rocket, bugs: BugSpec::Native });
    assert_eq!(
        checked_in_spec(),
        expected,
        "tests/golden/campaign_spec.json drifted from the grid's spec construction"
    );
}

#[test]
fn spec_file_campaign_matches_the_golden_snapshot() {
    let spec = checked_in_spec();
    let outcome = Campaign::from_spec(&spec).expect("self-contained spec").execute();
    assert_eq!(outcome.stats.tests_executed(), 120);
    let mut rendered = json::campaign(&spec, &outcome);
    rendered.push('\n'); // the binary prints one line

    let path = golden_dir().join("spec_campaign_smoke.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        eprintln!("re-blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "missing golden snapshot {} ({error}); run UPDATE_GOLDEN=1 cargo test \
             --test spec_campaign to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "the spec-driven campaign diverged from tests/golden/spec_campaign_smoke.json — \
         the RNG stream, the spec codec or the campaign renderer changed. If intentional, \
         re-bless with UPDATE_GOLDEN=1 and justify the re-baseline."
    );
}

/// A deliberately simple Bayesian-flavoured policy for the acceptance test:
/// Thompson-style sampling over empirical means with count-shrinking noise.
struct MiniThompson {
    kind: BanditKind,
    means: Vec<f64>,
    pulls: Vec<u64>,
}

impl Bandit for MiniThompson {
    fn kind(&self) -> BanditKind {
        self.kind
    }
    fn arms(&self) -> usize {
        self.means.len()
    }
    fn select(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        use rand::Rng as _;
        let mut best = 0;
        let mut best_sample = f64::NEG_INFINITY;
        for arm in 0..self.means.len() {
            let sigma = 1.0 / ((self.pulls[arm] as f64) + 1.0).sqrt();
            // Uniform noise stands in for a posterior draw; enough to test
            // the plumbing without a normal sampler.
            let sample = self.means[arm] + sigma * (rng.gen::<f64>() - 0.5);
            if sample > best_sample {
                best_sample = sample;
                best = arm;
            }
        }
        best
    }
    fn update(&mut self, arm: usize, reward: f64) {
        self.pulls[arm] += 1;
        let n = self.pulls[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }
    fn reset_arm(&mut self, arm: usize) {
        self.means[arm] = 0.0;
        self.pulls[arm] = 0;
    }
    fn value(&self, arm: usize) -> f64 {
        self.means[arm]
    }
    fn pulls(&self, arm: usize) -> u64 {
        self.pulls[arm]
    }
}

#[test]
fn runtime_registered_policy_runs_a_full_campaign_via_specs() {
    let kind = mab::register_policy("test-thompson", |params: &PolicyParams| {
        Box::new(MiniThompson {
            kind: params.kind,
            means: vec![0.0; params.arms],
            pulls: vec![0; params.arms],
        })
    })
    .expect("fresh name");

    // The registered name resolves everywhere a policy name is accepted …
    assert_eq!(BanditKind::parse("Test-Thompson"), Ok(kind));
    let spec = CampaignSpec::from_json(
        "{\"policy\":\"test-thompson\",\"rng_seed\":5,\
         \"campaign\":{\"max_tests\":60},\
         \"processor\":{\"core\":\"rocket\",\"bugs\":\"none\"}}",
    )
    .expect("spec naming the custom policy");
    assert_eq!(spec.policy, PolicySpec::Bandit(kind));

    // … drives a complete campaign through the session type …
    let outcome = Campaign::from_spec(&spec).expect("campaign assembles").execute();
    assert_eq!(outcome.stats.tests_executed(), 60);
    assert!(outcome.stats.final_coverage() > 0);
    let pulls: u64 = outcome.arms.iter().map(|a| a.pulls).sum();
    assert!(pulls >= 60, "every executed test is a pull");

    // … and the report label carries the registered name (no core/bench
    // source was edited to admit the policy).
    assert_eq!(outcome.stats.label(), "MABFuzz: test-thompson on rocket");

    // The custom policy is also reproducible: same spec, same bytes.
    let again = Campaign::from_spec(&spec).expect("campaign assembles").execute();
    assert_eq!(outcome, again);
}

#[test]
fn spec_round_trips_through_json_at_the_suite_level() {
    let spec = checked_in_spec();
    let round_tripped = CampaignSpec::from_json(&spec.to_json()).expect("round trip");
    assert_eq!(round_tripped, spec);
}
