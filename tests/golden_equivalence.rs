//! Cross-crate integration test: every bug-free processor model is
//! architecturally equivalent to the golden reference model on randomly
//! generated programs, and the differential-testing engine therefore stays
//! silent on them.

use std::sync::Arc;

use mabfuzz_suite::fuzzer::diff::compare_traces;
use mabfuzz_suite::fuzzer::FuzzHarness;
use mabfuzz_suite::isa_sim::GoldenSim;
use mabfuzz_suite::proc_sim::{BugSet, ProcessorKind};
use mabfuzz_suite::riscv::gen::{GeneratorConfig, ProgramGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PROGRAMS_PER_CORE: usize = 40;
const MAX_STEPS: usize = 400;

#[test]
fn bug_free_cores_match_the_golden_model_on_random_programs() {
    let generator = ProgramGenerator::new(GeneratorConfig::default());
    for kind in ProcessorKind::ALL {
        let core = kind.build(BugSet::none());
        let golden = GoldenSim::new();
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for index in 0..PROGRAMS_PER_CORE {
            let program = generator.generate_seed(&mut rng);
            let dut = core.run(&program, MAX_STEPS);
            let reference = golden.run(&program, MAX_STEPS);
            let report = compare_traces(&dut.trace, &reference);
            assert!(
                report.is_clean(),
                "bug-free {kind} diverged from the golden model on program {index}:\n{report}\n{program}"
            );
        }
    }
}

#[test]
fn coverage_is_reported_for_every_random_program() {
    let generator = ProgramGenerator::new(GeneratorConfig::default());
    for kind in ProcessorKind::ALL {
        let harness = FuzzHarness::new(Arc::from(kind.build(BugSet::none())), MAX_STEPS);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let program = generator.generate_seed(&mut rng);
            let outcome = harness.run_program(&program);
            assert!(
                outcome.coverage.count() > 0,
                "{kind} reported an empty coverage map for a non-trivial program"
            );
            assert!(!outcome.detected_mismatch());
        }
    }
}

#[test]
fn native_bug_sets_never_fire_spuriously_on_straightline_arithmetic() {
    // Straight-line arithmetic programs touch none of the seven triggers, so
    // even the fully buggy cores must match the golden model on them.
    use mabfuzz_suite::riscv::asm::parse_program;
    use mabfuzz_suite::riscv::Program;

    let program = Program::from_instrs(
        parse_program(
            "addi a0, zero, 123\n\
             addi a1, zero, -55\n\
             add a2, a0, a1\n\
             mul a3, a2, a2\n\
             sub a4, a3, a0\n\
             xor a5, a4, a1\n\
             ecall\n",
        )
        .expect("valid assembly"),
    );
    for kind in ProcessorKind::ALL {
        let core = kind.build_with_native_bugs();
        let dut = core.run(&program, 100);
        let reference = GoldenSim::new().run(&program, 100);
        let report = compare_traces(&dut.trace, &reference);
        assert!(report.is_clean(), "{kind} flagged a clean program:\n{report}");
    }
}
