//! Daemon hardening end to end: terminal-campaign TTL eviction, shared-secret
//! bearer auth (with an exempt health endpoint) and socket deadlines against
//! slowloris peers.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use mabfuzz_service::{CampaignServer, Client, ClientError};
use mabfuzz_suite::mabfuzz::{BugSpec, CampaignSpec};
use mabfuzz_suite::proc_sim::ProcessorKind;

fn tiny_spec(seed: u64) -> CampaignSpec {
    CampaignSpec::builder()
        .arms(4)
        .max_tests(40)
        .max_steps_per_test(200)
        .sample_interval(5)
        .rng_seed(seed)
        .processor(ProcessorKind::Rocket, BugSpec::None)
        .build()
        .expect("valid spec")
}

#[test]
fn terminal_campaigns_are_evicted_after_their_ttl() {
    let server = CampaignServer::bind("127.0.0.1:0", 1)
        .expect("bind")
        .with_ttl(Some(Duration::from_millis(400)));
    let client = Client::new(server.local_addr());
    let handle = thread::spawn(move || server.serve());

    let id = client.submit(&tiny_spec(3).to_json()).expect("submit");
    let status = client.wait_terminal(id, Duration::from_millis(5)).expect("status");
    assert_eq!(status.status, "finished");
    // Freshly terminal: still listed, still serving its report.
    assert_eq!(client.list().expect("list").len(), 1);
    client.report(id).expect("reports serve within the TTL");

    // Past the TTL the next request sweeps it out.
    thread::sleep(Duration::from_millis(600));
    assert!(client.list().expect("list").is_empty(), "the expired campaign was evicted");
    let error = client.status(id).expect_err("evicted id is unknown");
    assert!(matches!(error, ClientError::Http { status: 404, .. }), "{error}");

    // Manual DELETE keeps working alongside the TTL: evict a fresh terminal
    // campaign explicitly, well before its TTL lapses.
    let id = client.submit(&tiny_spec(4).to_json()).expect("submit");
    client.wait_terminal(id, Duration::from_millis(5)).expect("status");
    client.delete(id).expect("explicit DELETE still works");
    assert!(client.list().expect("list").is_empty());

    client.shutdown().expect("shutdown");
    handle.join().expect("thread").expect("clean shutdown");
}

#[test]
fn bearer_auth_rejects_missing_and_wrong_tokens_but_exempts_healthz() {
    let server = CampaignServer::bind("127.0.0.1:0", 1)
        .expect("bind")
        .with_auth_token(Some("s3kr1t".to_owned()));
    let anonymous = Client::new(server.local_addr());
    let wrong = anonymous.clone().with_auth_token("not-the-token");
    let authed = anonymous.clone().with_auth_token("s3kr1t");
    let handle = thread::spawn(move || server.serve());

    // No token and a wrong token are both 401s, on submission and queries.
    for client in [&anonymous, &wrong] {
        let error = client.submit(&tiny_spec(5).to_json()).expect_err("401");
        assert!(matches!(error, ClientError::Http { status: 401, .. }), "{error}");
        let error = client.list().expect_err("401");
        assert!(matches!(error, ClientError::Http { status: 401, .. }), "{error}");
    }

    // The health probe is exempt: liveness must be checkable by a
    // coordinator that does not hold the secret.
    assert_eq!(anonymous.healthz().expect("healthz is auth-exempt"), 0);

    // The right token gets full service.
    let id = authed.submit(&tiny_spec(5).to_json()).expect("authorized submit");
    let status = authed.wait_terminal(id, Duration::from_millis(5)).expect("status");
    assert_eq!(status.status, "finished");
    authed.report(id).expect("authorized report");

    authed.shutdown().expect("authorized shutdown");
    handle.join().expect("thread").expect("clean shutdown");
}

#[test]
fn slowloris_connections_are_cut_by_the_io_deadline() {
    let server = CampaignServer::bind("127.0.0.1:0", 1)
        .expect("bind")
        .with_io_timeout(Some(Duration::from_millis(100)));
    let addr = server.local_addr();
    let client = Client::new(addr);
    let handle = thread::spawn(move || server.serve());

    // A slowloris peer: opens a connection, dribbles half a request line,
    // then stalls. The daemon must cut it off instead of pinning the
    // connection thread forever.
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /stat").expect("partial request accepted");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client-side guard deadline");
    let mut response = Vec::new();
    // The server times the read out and closes the connection — either
    // silently or with an error response — bounded by the deadline, not by
    // our 10 s guard. What it must never do is wait for the rest of the
    // request or answer as if the fragment were a complete one.
    match stream.read_to_end(&mut response) {
        Ok(_) | Err(_) => {}
    }
    if !response.is_empty() {
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 4"),
            "a stalled fragment can only earn a client error, got: {text}"
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the daemon held a slowloris connection for {:?}",
        started.elapsed()
    );

    // The daemon is still serving normal traffic afterwards.
    let id = client.submit(&tiny_spec(6).to_json()).expect("submit after slowloris");
    let status = client.wait_terminal(id, Duration::from_millis(5)).expect("status");
    assert_eq!(status.status, "finished");

    client.shutdown().expect("shutdown");
    handle.join().expect("thread").expect("clean shutdown");
}
