//! Golden-file regression for the paper artefacts.
//!
//! Reproduces exactly what `experiments all --tests 120 --cap 250
//! --repeats 1 --seed 7 --json` prints (the CI smoke budget) through the
//! bench library, and byte-compares it against
//! `tests/golden/experiments_smoke.json`. Any change to the RNG stream, the
//! reward shape, the campaign loop or the JSON renderers fails this test
//! loudly instead of silently re-baselining the published numbers.
//!
//! When a change is *intentional*, re-bless the snapshot with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_experiments
//! ```
//!
//! and justify the re-baseline in the PR description. CI additionally
//! `cmp`s the snapshot against the actual binary's output and uploads both
//! as artifacts on failure.

use std::fmt::Write as _;
use std::path::PathBuf;

use mabfuzz_bench::{ablation, fig3, fig4, json, table1, ExperimentBudget, Parallelism};
use proc_sim::{ProcessorKind, Vulnerability};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/experiments_smoke.json")
}

/// Renders the four JSON documents of `experiments all --json` (one per
/// line, trailing newline) under the CI smoke budget.
fn render_smoke_report() -> String {
    let budget = ExperimentBudget::smoke(); // 120 tests / 250 cap / 1 rep / seed 7
    // Serial grid: the executor's own equivalence tests guarantee every
    // other mode produces the same bytes.
    let parallelism = Parallelism::Serial;
    let cores = ProcessorKind::ALL;
    let ablation_core = cores[0];

    let mut out = String::new();
    let table1 = table1::run_for_with(&Vulnerability::ALL, &budget, parallelism);
    writeln!(out, "{}", json::table1(&table1)).expect("string write");
    let fig3 = fig3::run_for_with(&cores, &budget, parallelism);
    writeln!(out, "{}", json::fig3(&fig3)).expect("string write");
    writeln!(out, "{}", json::fig4(&fig4::from_fig3(&fig3))).expect("string write");
    let sweeps = [
        ablation::alpha_sweep_with(ablation_core, &budget, parallelism),
        ablation::gamma_sweep_with(ablation_core, &budget, parallelism),
        ablation::arms_sweep_with(ablation_core, &budget, parallelism),
        ablation::reset_ablation_with(ablation_core, &budget, parallelism),
    ];
    writeln!(out, "{}", json::ablations(&sweeps)).expect("string write");
    out
}

#[test]
fn experiments_all_json_matches_the_golden_snapshot() {
    let rendered = render_smoke_report();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        eprintln!("re-blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "missing golden snapshot {} ({error}); run UPDATE_GOLDEN=1 cargo test \
             --test golden_experiments to create it"
        , path.display())
    });
    if rendered != golden {
        // Locate the first diverging line for a readable failure.
        for (index, (have, want)) in rendered.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                have,
                want,
                "experiments JSON line {} diverged from tests/golden/experiments_smoke.json — \
                 the RNG stream, reward shape or renderer changed. If intentional, re-bless \
                 with UPDATE_GOLDEN=1 and justify the re-baseline.",
                index + 1
            );
        }
        panic!(
            "experiments JSON line count changed: {} rendered vs {} golden",
            rendered.lines().count(),
            golden.lines().count()
        );
    }
}

/// The snapshot itself is well-formed: four non-empty JSON lines with the
/// experiment tags the downstream tooling keys on.
#[test]
fn golden_snapshot_is_well_formed() {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        return; // the other test is rewriting it right now
    }
    let golden = std::fs::read_to_string(golden_path()).expect("golden snapshot present");
    let lines: Vec<&str> = golden.lines().collect();
    assert_eq!(lines.len(), 4, "one JSON document per experiment");
    assert!(lines[0].starts_with("{\"experiment\":\"table1\""));
    assert!(lines[1].starts_with("{\"experiment\":\"fig3\""));
    assert!(lines[2].starts_with("{\"experiment\":\"fig4\""));
    assert!(lines[3].starts_with("[{\"experiment\":\"ablation\""));
    for line in lines {
        assert!(line.ends_with('}') || line.ends_with(']'));
    }
}
