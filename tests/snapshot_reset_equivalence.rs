//! Differential oracle for the snapshot/dirty-reset execution-state path.
//!
//! Snapshot reset (`isa_sim::snapshot`) is on by default, so every other
//! test in the repo — including the golden snapshot — pins the *restored*
//! behaviour. This test keeps full reinitialisation honest as an oracle: it
//! renders the full `experiments all --json` smoke report with
//! `MABFUZZ_SNAPSHOT_RESET=off` and with it forced on, and requires both to
//! be byte-identical to each other and to
//! `tests/golden/experiments_smoke.json`.
//!
//! A divergence here means a mutation path dirtied state without marking it
//! (or the reinit path rotted) — either way the clean-implies-pristine
//! invariant the restore leans on no longer holds and must be
//! re-established before re-blessing anything.
//!
//! The test manipulates the process environment, so it is the only `#[test]`
//! in this binary and performs the on/off runs sequentially.

use std::fmt::Write as _;
use std::path::PathBuf;

use fuzzer::ExecScratch;
use mabfuzz_bench::{ablation, fig3, fig4, json, table1, ExperimentBudget, Parallelism};
use proc_sim::{ProcessorKind, Vulnerability};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/experiments_smoke.json")
}

/// Renders the CI smoke report exactly like `tests/golden_experiments.rs`
/// (the two must stay in lockstep; that test owns the snapshot).
fn render_smoke_report() -> String {
    let budget = ExperimentBudget::smoke();
    let parallelism = Parallelism::Serial;
    let cores = ProcessorKind::ALL;
    let ablation_core = cores[0];

    let mut out = String::new();
    let table1 = table1::run_for_with(&Vulnerability::ALL, &budget, parallelism);
    writeln!(out, "{}", json::table1(&table1)).expect("string write");
    let fig3 = fig3::run_for_with(&cores, &budget, parallelism);
    writeln!(out, "{}", json::fig3(&fig3)).expect("string write");
    writeln!(out, "{}", json::fig4(&fig4::from_fig3(&fig3))).expect("string write");
    let sweeps = [
        ablation::alpha_sweep_with(ablation_core, &budget, parallelism),
        ablation::gamma_sweep_with(ablation_core, &budget, parallelism),
        ablation::arms_sweep_with(ablation_core, &budget, parallelism),
        ablation::reset_ablation_with(ablation_core, &budget, parallelism),
    ];
    writeln!(out, "{}", json::ablations(&sweeps)).expect("string write");
    out
}

#[test]
fn restored_and_reinitialised_smoke_reports_are_byte_identical() {
    // Oracle pass: every test reinitialises both simulators from scratch.
    std::env::set_var(ExecScratch::SNAPSHOT_RESET_ENV, "off");
    assert!(
        !ExecScratch::new().snapshot_reset_enabled(),
        "MABFUZZ_SNAPSHOT_RESET=off must select full reinit"
    );
    let reinitialised = render_smoke_report();

    // Restored pass: the default production configuration, forced explicitly
    // so the assertion does not depend on the ambient environment.
    std::env::set_var(ExecScratch::SNAPSHOT_RESET_ENV, "on");
    assert!(
        ExecScratch::new().snapshot_reset_enabled(),
        "MABFUZZ_SNAPSHOT_RESET=on must select snapshot reset"
    );
    let restored = render_smoke_report();
    std::env::remove_var(ExecScratch::SNAPSHOT_RESET_ENV);

    assert_eq!(
        reinitialised, restored,
        "snapshot reset changed campaign behaviour — some state survives a \
         dirty restore (or is cleaned differently than a full reinit)"
    );

    // Both must also match the published snapshot, so the oracle cannot
    // drift together with the restore path.
    let golden = std::fs::read_to_string(golden_path()).expect(
        "missing tests/golden/experiments_smoke.json; run UPDATE_GOLDEN=1 \
         cargo test --test golden_experiments first",
    );
    assert_eq!(
        restored, golden,
        "smoke report diverged from the golden snapshot (see \
         tests/golden_experiments.rs for the re-bless procedure)"
    );
}
