//! The sharded campaign's headline guarantee, exhaustively: for every core
//! (rocket / cva6 / boom) × bandit (ε-greedy / UCB1 / EXP3), the **full
//! campaign report** — coverage series, cumulative history, rewards as
//! observed through the final bandit-driven arm statistics, detections and
//! reset counts — is byte-identical for 1, 2, 3 and 7 shards.
//!
//! The suite pins the three rules of the determinism contract documented in
//! `fuzzer::shard`: per-test RNG streams derived from
//! `(campaign_seed, round, test_index)`, a pure simulation map, and a
//! reduction folded in `test_index` order. If any of them breaks, some
//! (core, bandit, shard-count) cell here diverges from its 1-shard
//! reference.
//!
//! CI runs this file under `--test-threads=1` with `MABFUZZ_SHARDS` forced
//! to several values; a forced count is added to the tested set below.

use std::sync::Arc;

use mabfuzz_suite::mab::BanditKind;
use mabfuzz_suite::mabfuzz::{MabFuzzConfig, MabFuzzOutcome, MabFuzzer, ShardPlan};
use mabfuzz_suite::proc_sim::{BugSet, Processor, ProcessorKind, Vulnerability};

/// Batch size shared by every plan in the suite: cross-shard-count
/// equivalence only holds at a fixed batch size.
const BATCH: usize = 5;

/// Campaign budget: small enough that the full 3×3×4 grid stays fast, large
/// enough that every campaign goes through refills, interesting-test
/// mutations and (with γ=2) arm resets.
const MAX_TESTS: u64 = 45;

fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 3, 7];
    if let Ok(forced) = std::env::var("MABFUZZ_SHARDS") {
        if let Ok(forced) = forced.trim().parse::<usize>() {
            if forced > 0 && !counts.contains(&forced) {
                counts.push(forced);
            }
        }
    }
    counts
}

fn campaign(core: ProcessorKind, kind: BanditKind, shards: usize) -> MabFuzzOutcome {
    let processor: Arc<dyn Processor> = Arc::from(core.build(BugSet::none()));
    let mut config = MabFuzzConfig::new(kind).with_arms(4).with_gamma(2).with_max_tests(MAX_TESTS);
    config.campaign.max_steps_per_test = 200;
    config.campaign.sample_interval = 5;
    config.campaign.mutations_per_interesting_test = 2;
    MabFuzzer::new(processor, config, 0xD15E + core as u64)
        .run_sharded(&ShardPlan::sharded(shards).with_batch_size(BATCH))
}

#[test]
fn campaign_reports_are_byte_identical_across_shard_counts() {
    for core in ProcessorKind::ALL {
        for kind in BanditKind::ALL {
            let reference = campaign(core, kind, 1);
            assert_eq!(reference.stats.tests_executed(), MAX_TESTS, "{core} {kind}");
            assert!(reference.stats.final_coverage() > 0, "{core} {kind}");
            for shards in shard_counts() {
                let sharded = campaign(core, kind, shards);
                // Structured equality over the whole outcome first …
                assert_eq!(
                    reference, sharded,
                    "{core} × {kind}: {shards} shards diverged from the 1-shard reference"
                );
                // … then byte equality of the rendered report, which also
                // covers formatting-relevant state the derives might not.
                assert_eq!(
                    format!("{reference:?}"),
                    format!("{sharded:?}"),
                    "{core} × {kind}: rendered report differs at {shards} shards"
                );
                // Spot-check the order-sensitive pieces explicitly so a
                // future PartialEq change cannot silently weaken the suite.
                assert_eq!(
                    reference.stats.cumulative().history(),
                    sharded.stats.cumulative().history(),
                    "{core} × {kind}: per-test coverage history differs at {shards} shards"
                );
                assert_eq!(
                    reference.stats.series().points(),
                    sharded.stats.series().points(),
                    "{core} × {kind}: coverage series differs at {shards} shards"
                );
                assert_eq!(reference.stats.detections(), sharded.stats.detections());
                assert_eq!(reference.total_resets, sharded.total_resets);
            }
        }
    }
}

/// Detection-mode campaigns (the Table I shape: stop at the first
/// architectural mismatch) are equally shard-count independent, including
/// *which* test number detects the bug.
#[test]
fn detection_campaigns_are_byte_identical_across_shard_counts() {
    let run = |shards: usize| {
        let processor: Arc<dyn Processor> =
            Arc::from(ProcessorKind::Cva6.build(BugSet::only(Vulnerability::V5MissingAccessFault)));
        let mut config = MabFuzzConfig::new(BanditKind::Ucb1).with_arms(4).with_max_tests(600);
        config.campaign.max_steps_per_test = 200;
        config.campaign.stop_on_first_detection = true;
        MabFuzzer::new(processor, config, 3)
            .run_sharded(&ShardPlan::sharded(shards).with_batch_size(BATCH))
    };
    let reference = run(1);
    let detection =
        reference.stats.first_detection().expect("V5 must be detected within the budget");
    assert_eq!(reference.stats.tests_executed(), detection);
    for shards in shard_counts() {
        let sharded = run(shards);
        assert_eq!(reference, sharded, "{shards} shards changed the detection outcome");
        assert_eq!(sharded.stats.first_detection(), Some(detection));
    }
}

/// The same campaign at two different batch sizes is *not* expected to
/// match — batching is a deliberate change of the RNG contract. This guard
/// documents that asymmetry so nobody "fixes" the equivalence suite by
/// comparing across batch sizes.
#[test]
fn equivalence_holds_per_batch_size_not_across() {
    let processor = || -> Arc<dyn Processor> {
        Arc::from(ProcessorKind::Rocket.build(BugSet::none()))
    };
    let run = |batch: usize| {
        let mut config =
            MabFuzzConfig::new(BanditKind::EpsilonGreedy).with_arms(4).with_max_tests(40);
        config.campaign.max_steps_per_test = 200;
        MabFuzzer::new(processor(), config, 11)
            .run_sharded(&ShardPlan::sharded(2).with_batch_size(batch))
    };
    let small = run(2);
    let large = run(8);
    assert_eq!(small.stats.tests_executed(), large.stats.tests_executed());
    assert_ne!(
        small.stats.cumulative().history(),
        large.stats.cumulative().history(),
        "different batch sizes are different campaigns by design"
    );
}
