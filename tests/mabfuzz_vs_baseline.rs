//! Cross-crate integration test: the qualitative claims of the paper hold on
//! the simulated substrate — MABFuzz keeps up with or beats the static
//! baseline on coverage under an equal test budget, and its dynamic seed
//! scheduling actually exercises the reset machinery.

use std::sync::Arc;

use mabfuzz_suite::fuzzer::{CampaignConfig, TheHuzzFuzzer};
use mabfuzz_suite::mab::BanditKind;
use mabfuzz_suite::mabfuzz::{MabFuzzConfig, MabFuzzer};
use mabfuzz_suite::proc_sim::{Processor, ProcessorKind};

const TESTS: u64 = 500;

fn campaign() -> CampaignConfig {
    CampaignConfig {
        max_tests: TESTS,
        max_steps_per_test: 250,
        sample_interval: 25,
        ..CampaignConfig::default()
    }
}

fn target(kind: ProcessorKind) -> Arc<dyn Processor> {
    Arc::from(kind.build_with_native_bugs())
}

#[test]
fn some_mabfuzz_variant_matches_or_beats_the_baseline_on_cva6_coverage() {
    // CVA6 is the design with the most headroom (lowest baseline coverage in
    // the paper); at least one MABFuzz algorithm should reach at least the
    // baseline's coverage under the same budget. Like the paper's evaluation,
    // the comparison averages independent repetitions — any single seed can
    // favour either side on a budget this small.
    const SEEDS: [u64; 3] = [21, 22, 23];
    let baseline: usize = SEEDS
        .iter()
        .map(|&seed| {
            TheHuzzFuzzer::new(target(ProcessorKind::Cva6), campaign(), seed)
                .run()
                .final_coverage()
        })
        .sum();
    let mut best = 0usize;
    for kind in BanditKind::ALL {
        let total: usize = SEEDS
            .iter()
            .map(|&seed| {
                let mut config = MabFuzzConfig::new(kind);
                config.campaign = campaign();
                MabFuzzer::new(target(ProcessorKind::Cva6), config, seed)
                    .run()
                    .stats
                    .final_coverage()
            })
            .sum();
        best = best.max(total);
    }
    assert!(
        best * 100 >= baseline * 98,
        "best MABFuzz mean coverage {best} fell more than 2% short of the baseline {baseline}"
    );
}

#[test]
fn mabfuzz_resets_arms_during_long_campaigns() {
    let mut config = MabFuzzConfig::new(BanditKind::Ucb1).with_max_tests(TESTS);
    config.campaign.max_steps_per_test = 250;
    let outcome = MabFuzzer::new(target(ProcessorKind::Rocket), config, 8).run();
    assert!(
        outcome.total_resets > 0,
        "a {TESTS}-test campaign with gamma=3 should hit saturated arms"
    );
    // Resets replace seeds, so the arms' lifetime pull counts must still sum
    // to at least the number of executed tests.
    let pulls: u64 = outcome.arms.iter().map(|arm| arm.pulls).sum();
    assert!(pulls >= outcome.stats.tests_executed());
}

#[test]
fn equal_budgets_are_enforced_for_a_fair_comparison() {
    let baseline = TheHuzzFuzzer::new(target(ProcessorKind::Boom), campaign(), 2).run();
    let mut config = MabFuzzConfig::new(BanditKind::EpsilonGreedy);
    config.campaign = campaign();
    let mabfuzz = MabFuzzer::new(target(ProcessorKind::Boom), config, 2).run();
    assert_eq!(baseline.tests_executed(), TESTS);
    assert_eq!(mabfuzz.stats.tests_executed(), TESTS);
    // BOOM is the design with the least headroom: both fuzzers should end up
    // in the same coverage ballpark (within 20% of each other under this
    // short budget), mirroring the paper's observation that there is little
    // room for improvement there.
    let a = baseline.final_coverage() as f64;
    let b = mabfuzz.stats.final_coverage() as f64;
    assert!((a - b).abs() / a < 0.20, "baseline {a} vs MABFuzz {b} diverged unexpectedly far");
}
