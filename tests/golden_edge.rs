//! The edge-coverage signal, end to end, pinned by a golden snapshot.
//!
//! Runs the checked-in smoke spec (`tests/golden/campaign_spec.json`) with
//! `coverage_signal: "edge"` — the only change from the point-signal run
//! that `tests/golden/spec_campaign_smoke.json` pins — and byte-compares
//! the rendered report against `tests/golden/experiments_edge_smoke.json`
//! (re-bless with `UPDATE_GOLDEN=1`, like the other goldens). CI
//! additionally checks the `experiments run --coverage-signal edge` binary
//! path against the same snapshot and `cmp`s the edge event streams across
//! shard counts (the `edge-coverage-equivalence` job).
//!
//! The suite also pins the two structural guarantees the snapshot alone
//! cannot express: the edge campaign's outcome is *identical for every
//! shard count* (the `fuzzer::shard` determinism contract extends to edge
//! folds), and the edge report genuinely differs from the point report —
//! the signal is selectable, not cosmetic.

use std::path::PathBuf;

use mabfuzz_bench::json;
use mabfuzz_suite::mabfuzz::{Campaign, CampaignSpec, CoverageSignal};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The checked-in smoke spec with the edge signal selected.
fn edge_spec() -> CampaignSpec {
    let path = golden_dir().join("campaign_spec.json");
    let text = std::fs::read_to_string(&path).expect("campaign_spec.json present");
    let mut spec = CampaignSpec::from_json(&text).expect("the checked-in spec parses");
    spec.coverage_signal = CoverageSignal::Edge;
    spec
}

#[test]
fn edge_signal_campaign_matches_the_golden_snapshot() {
    let spec = edge_spec();
    let outcome = Campaign::from_spec(&spec).expect("self-contained spec").execute();
    assert_eq!(outcome.stats.tests_executed(), 120);
    assert!(outcome.stats.final_coverage() > 0, "edge bitmap never populated");
    let mut rendered = json::campaign(&spec, &outcome);
    rendered.push('\n'); // the binary prints one line

    let path = golden_dir().join("experiments_edge_smoke.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        eprintln!("re-blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "missing golden snapshot {} ({error}); run UPDATE_GOLDEN=1 cargo test \
             --test golden_edge to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "the edge-signal campaign diverged from tests/golden/experiments_edge_smoke.json — \
         the static CFG, the edge space, the RNG stream or the renderer changed. If \
         intentional, re-bless with UPDATE_GOLDEN=1 and justify the re-baseline."
    );
}

#[test]
fn edge_signal_outcome_is_shard_count_invariant() {
    let reference = Campaign::from_spec(&edge_spec()).expect("spec").execute();
    for shards in [2, 4] {
        let mut spec = edge_spec();
        spec.shards = shards;
        let sharded = Campaign::from_spec(&spec).expect("spec").execute();
        assert_eq!(
            reference, sharded,
            "edge-signal outcome changed between 1 and {shards} shards"
        );
    }
}

#[test]
fn edge_and_point_reports_differ() {
    // The spec echo alone differs (the `coverage_signal` key), so compare
    // the coverage trajectories: a 4096-edge space cannot tell the same
    // story as the point bitmap on the same test stream.
    let edge = Campaign::from_spec(&edge_spec()).expect("spec").execute();
    let point_spec = {
        let mut spec = edge_spec();
        spec.coverage_signal = CoverageSignal::Point;
        spec
    };
    let point = Campaign::from_spec(&point_spec).expect("spec").execute();
    assert_ne!(
        edge.stats.final_coverage(),
        point.stats.final_coverage(),
        "edge and point signals reported identical final coverage — is the \
         signal actually threaded through to the harness?"
    );
}
